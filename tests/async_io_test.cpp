// Async submit/complete engine tests: the BlockDevice submit shim, the
// TimedDevice queue-depth model (exact virtual-time math, completion
// ordering, implicit sync barriers), async-vs-sync state equivalence across
// every registered scheme, deterministic replay at every queue depth and
// crypto worker-thread count, the crypto worker pool, and the per-volume
// range locks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/timed_device.hpp"
#include "core/dummy_write.hpp"
#include "crypto/crypto_pool.hpp"
#include "crypto/random.hpp"
#include "dm/crypt_target.hpp"
#include "dm/striped_target.hpp"
#include "thin/range_lock.hpp"
#include "thin/thin_pool.hpp"
#include "util/clock_domain.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using blockdev::IoOp;
using blockdev::IoRequest;

namespace {

constexpr std::size_t kBs = blockdev::kDefaultBlockSize;

util::Bytes pattern(std::size_t n, std::uint8_t salt) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(salt + i * 131);
  }
  return out;
}

/// Toy model with round numbers so completion times can be asserted
/// exactly: command 10 ns, read 1000 ns/blk, write 2000 ns/blk, random
/// penalties 1000/2000 ns, flush 5000 ns.
blockdev::TimingModel toy_model() {
  blockdev::TimingModel m;
  m.per_io_ns = 10;
  m.read_per_block_ns = 1000;
  m.write_per_block_ns = 2000;
  m.random_read_penalty_ns = 1000;
  m.random_write_penalty_ns = 2000;
  m.flush_ns = 5000;
  return m;
}

struct TimedFixture {
  std::shared_ptr<util::SimClock> clock;
  std::shared_ptr<blockdev::MemBlockDevice> mem;
  std::shared_ptr<blockdev::TimedDevice> dev;

  explicit TimedFixture(std::uint32_t depth, std::uint64_t blocks = 256) {
    clock = std::make_shared<util::SimClock>();
    mem = std::make_shared<blockdev::MemBlockDevice>(blocks);
    dev = std::make_shared<blockdev::TimedDevice>(mem, toy_model(), clock);
    dev->set_queue_depth(depth);
  }
};

IoRequest read_req(std::uint64_t first, std::uint64_t count,
                   util::MutByteSpan buf, std::uint64_t cookie = 0) {
  IoRequest r;
  r.op = IoOp::kRead;
  r.first = first;
  r.count = count;
  r.read_buf = buf;
  r.user_data = cookie;
  return r;
}

IoRequest write_req(std::uint64_t first, util::ByteSpan buf,
                    std::uint64_t cookie = 0) {
  IoRequest r;
  r.op = IoOp::kWrite;
  r.first = first;
  r.count = buf.size() / kBs;
  r.write_buf = buf;
  r.user_data = cookie;
  return r;
}

}  // namespace

// ---- base shim ---------------------------------------------------------------

TEST(AsyncEngine, SyncShimRoundTripsDataAndCompletesInstantly) {
  blockdev::MemBlockDevice dev(64);
  const util::Bytes data = pattern(4 * kBs, 7);
  const auto w = dev.submit(write_req(8, data, /*cookie=*/11));
  EXPECT_EQ(w.complete_ns, 0u);

  util::Bytes out(4 * kBs);
  dev.submit(read_req(8, 4, out, /*cookie=*/22));
  EXPECT_EQ(out, data);  // data moved at submit time

  const auto done = dev.poll_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].user_data, 11u);  // ties broken by submission ticket
  EXPECT_EQ(done[1].user_data, 22u);
  EXPECT_LT(done[0].ticket, done[1].ticket);
  EXPECT_TRUE(dev.poll_completions().empty());  // reaped exactly once
}

TEST(AsyncEngine, SubmitValidatesLikeSyncEntryPoints) {
  blockdev::MemBlockDevice dev(16);
  util::Bytes buf(4 * kBs);
  EXPECT_THROW(dev.submit(read_req(14, 4, buf)), util::IoError);  // range
  IoRequest bad = write_req(0, {buf.data(), 2 * kBs});
  bad.count = 3;  // size != count * bs
  EXPECT_THROW(dev.submit(bad), util::IoError);
  EXPECT_TRUE(dev.poll_completions().empty());  // nothing enqueued
}

TEST(AsyncEngine, QueueDepthHintDefaultsToOneAndClamps) {
  blockdev::MemBlockDevice dev(16);
  EXPECT_EQ(dev.queue_depth(), 1u);
  dev.set_queue_depth(0);
  EXPECT_EQ(dev.queue_depth(), 1u);
  dev.set_queue_depth(8);
  EXPECT_EQ(dev.queue_depth(), 8u);
}

// ---- TimedDevice queue-depth model -------------------------------------------

TEST(QueueDepthModel, TransfersOverlapButCommandsStaySerial) {
  // Four 4-block random reads: commands serialise at 1010 ns each (10 +
  // 1000 penalty); transfers (4000 ns) overlap on 4 slots.
  TimedFixture f(/*depth=*/4);
  util::Bytes buf(16 * kBs);
  std::uint64_t done[4];
  for (int i = 0; i < 4; ++i) {
    done[i] = f.dev
                  ->submit(read_req(static_cast<std::uint64_t>(i) * 32, 4,
                                    {buf.data() + i * 4 * kBs, 4 * kBs}))
                  .complete_ns;
  }
  EXPECT_EQ(done[0], 1010u + 4000u);
  EXPECT_EQ(done[1], 2020u + 4000u);
  EXPECT_EQ(done[2], 3030u + 4000u);
  EXPECT_EQ(done[3], 4040u + 4000u);

  // Same four requests at depth 1 serialise their transfers too.
  TimedFixture g(/*depth=*/1);
  std::uint64_t serial_done = 0;
  for (int i = 0; i < 4; ++i) {
    serial_done = g.dev
                      ->submit(read_req(static_cast<std::uint64_t>(i) * 32, 4,
                                        {buf.data() + i * 4 * kBs, 4 * kBs}))
                      .complete_ns;
  }
  EXPECT_EQ(serial_done, 1010u + 4 * 4000u + 3 * 1010u);
  EXPECT_GT(serial_done, done[3]);
  EXPECT_EQ(f.dev->async_ios(), 4u);
  EXPECT_EQ(f.dev->random_ios(), 4u);
}

TEST(QueueDepthModel, DrainAdvancesClockToLastCompletion) {
  TimedFixture f(/*depth=*/4);
  util::Bytes buf(16 * kBs);
  for (int i = 0; i < 4; ++i) {
    f.dev->submit(read_req(static_cast<std::uint64_t>(i) * 32, 4,
                           {buf.data() + i * 4 * kBs, 4 * kBs}));
  }
  EXPECT_EQ(f.clock->now(), 0u);                  // nothing awaited yet
  EXPECT_TRUE(f.dev->poll_completions().empty());  // none ready at t=0
  const auto all = f.dev->drain();
  EXPECT_EQ(f.clock->now(), 8040u);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].complete_ns, all[i].complete_ns);
  }
}

TEST(QueueDepthModel, CompletionsDeliverInVirtualTimeOrderNotSubmission) {
  // A 16-block read followed by a sequential 1-block read at depth 2: the
  // small transfer finishes long before the big one.
  TimedFixture f(/*depth=*/2);
  util::Bytes big(16 * kBs), small(kBs);
  const auto r1 = f.dev->submit(read_req(0, 16, big, /*cookie=*/1));
  const auto r2 = f.dev->submit(read_req(16, 1, small, /*cookie=*/2));
  EXPECT_LT(r2.complete_ns, r1.complete_ns);
  const auto all = f.dev->drain();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].user_data, 2u);
  EXPECT_EQ(all[1].user_data, 1u);
}

TEST(QueueDepthModel, SyncIoIsAnImplicitBarrier) {
  TimedFixture f(/*depth=*/8);
  util::Bytes buf(16 * kBs);
  std::uint64_t last = 0;
  for (int i = 0; i < 4; ++i) {
    last = f.dev
               ->submit(read_req(static_cast<std::uint64_t>(i) * 32, 4,
                                 {buf.data() + i * 4 * kBs, 4 * kBs}))
               .complete_ns;
  }
  // A synchronous read while 4 requests are in flight waits them out
  // first, then pays its own (sequential) service time.
  util::Bytes one(kBs);
  f.dev->read_block(140, one);
  EXPECT_EQ(f.clock->now(), last + 10 + 1000 + 1000);  // barrier + random 1-blk
}

TEST(QueueDepthModel, FlushIsABarrierOnTheSubmitPath) {
  TimedFixture f(/*depth=*/4);
  util::Bytes buf(8 * kBs);
  const auto r1 = f.dev->submit(write_req(0, buf));
  IoRequest fl;
  fl.op = IoOp::kFlush;
  const auto r2 = f.dev->submit(fl);
  EXPECT_EQ(r2.complete_ns, r1.complete_ns + 5000u);
  // The next request cannot start its command before the flush completed;
  // it is sequential to the first write (cmd 10 ns), then transfers.
  const auto r3 = f.dev->submit(write_req(8, buf));
  EXPECT_EQ(r3.complete_ns, r2.complete_ns + 10u + 8 * 2000u);
}

TEST(QueueDepthModel, AvailableNsDefersServiceStart) {
  TimedFixture f(/*depth=*/4);
  util::Bytes buf(4 * kBs);
  IoRequest r = write_req(0, buf);
  r.available_ns = 100'000;  // ciphertext "ready" far in the future
  const auto res = f.dev->submit(r);
  EXPECT_EQ(res.complete_ns, 100'000u + 10 + 2000 + 4 * 2000u);
}

TEST(QueueDepthModel, DepthOneAsyncMatchesSyncTotals) {
  // The same request train costs the same virtual time through the async
  // engine at depth 1 as through the classic synchronous vectored path.
  TimedFixture async_f(/*depth=*/1);
  util::Bytes buf(8 * kBs);
  for (int i = 0; i < 3; ++i) {
    async_f.dev->submit(
        write_req(static_cast<std::uint64_t>(i) * 8, buf));
  }
  async_f.dev->drain();

  TimedFixture sync_f(/*depth=*/1);
  for (int i = 0; i < 3; ++i) {
    sync_f.dev->write_blocks(static_cast<std::uint64_t>(i) * 8, buf);
  }
  EXPECT_EQ(async_f.clock->now(), sync_f.clock->now());
}

// ---- thin-pool fan-out -------------------------------------------------------

namespace {

struct AsyncPoolFixture {
  std::shared_ptr<util::SimClock> clock;
  std::shared_ptr<blockdev::MemBlockDevice> meta, mem;
  std::shared_ptr<blockdev::TimedDevice> data;
  std::shared_ptr<thin::ThinPool> pool;

  AsyncPoolFixture(thin::AllocPolicy policy, std::uint32_t depth,
                   std::uint64_t data_blocks = 2048,
                   std::uint32_t chunk_blocks = 4) {
    clock = std::make_shared<util::SimClock>();
    meta = std::make_shared<blockdev::MemBlockDevice>(512);
    mem = std::make_shared<blockdev::MemBlockDevice>(data_blocks);
    data = std::make_shared<blockdev::TimedDevice>(mem, toy_model(), clock);
    data->set_queue_depth(depth);
    thin::ThinPool::Config cfg;
    cfg.chunk_blocks = chunk_blocks;
    cfg.max_volumes = 8;
    cfg.policy = policy;
    cfg.cpu = thin::ThinCpuModel::zero();
    pool = thin::ThinPool::format(meta, data, cfg, clock);
  }
};

}  // namespace

TEST(AsyncThinPool, FragmentedExtentRunsCompleteInVirtualTimeOrder) {
  AsyncPoolFixture f(thin::AllocPolicy::kSequential, /*depth=*/4);
  f.pool->create_thin(0, 16);
  auto vol = f.pool->open_thin(0);
  // Provision out of order so logical order is physically fragmented:
  // vchunk 0 -> phys 0, vchunk 2 -> phys 1, vchunk 1 -> phys 2.
  vol->write_block(0 * 4, pattern(kBs, 1));
  vol->write_block(2 * 4, pattern(kBs, 2));
  vol->write_block(1 * 4, pattern(kBs, 3));
  f.data->drain();
  f.data->reset_counters();

  // One spanning read fans out into 3 runs; with depth 4 their transfers
  // overlap and completions surface in virtual-time order.
  util::Bytes out(12 * kBs);
  vol->read_blocks(0, 12, out);
  EXPECT_EQ(f.data->async_ios(), 3u);
  const auto done = f.data->poll_completions();
  EXPECT_TRUE(done.empty());  // volume path drained its own completions

  // Equivalent per-block read returns identical bytes.
  util::Bytes ref(12 * kBs);
  for (std::uint64_t i = 0; i < 12; ++i) {
    vol->read_block(i, {ref.data() + i * kBs, kBs});
  }
  EXPECT_EQ(out, ref);
}

TEST(AsyncThinPool, HolesZeroFillAndMappedRunsLand) {
  AsyncPoolFixture f(thin::AllocPolicy::kSequential, /*depth=*/8);
  f.pool->create_thin(0, 4);
  auto vol = f.pool->open_thin(0);
  const util::Bytes w = pattern(4 * kBs, 17);
  vol->write_blocks(4, w);  // vchunk 1 only; 0, 2, 3 stay holes

  const util::Bytes all = vol->read_blocks(0, 16);
  EXPECT_EQ(util::Bytes(all.begin(), all.begin() + 4 * kBs),
            util::Bytes(4 * kBs, 0));
  EXPECT_EQ(util::Bytes(all.begin() + 4 * kBs, all.begin() + 8 * kBs), w);
  EXPECT_EQ(util::Bytes(all.begin() + 8 * kBs, all.end()),
            util::Bytes(8 * kBs, 0));
}

TEST(AsyncThinPool, QueueDepthSpeedsUpFragmentedReads) {
  auto run = [](std::uint32_t depth) {
    AsyncPoolFixture f(thin::AllocPolicy::kRandom, depth, 4096, 4);
    f.pool->create_thin(0, 64);
    auto vol = f.pool->open_thin(0);
    const util::Bytes data = pattern(256 * kBs, 5);
    vol->write_blocks(0, data);
    f.data->drain();
    const std::uint64_t t0 = f.clock->now();
    util::Bytes out(256 * kBs);
    vol->read_blocks(0, 256, out);
    EXPECT_EQ(out, data);
    return f.clock->now() - t0;
  };
  const std::uint64_t qd1 = run(1), qd2 = run(2), qd8 = run(8);
  EXPECT_LT(qd8, qd2);
  EXPECT_LT(qd2, qd1);
  EXPECT_GE(qd1, qd8 * 2);  // random-placement chunks overlap heavily
}

// ---- dummy writes ride the queue ---------------------------------------------

namespace {

struct MobiCealishStack {
  std::unique_ptr<crypto::SecureRandom> rng;
  std::unique_ptr<core::DummyWriteEngine> engine;
  std::shared_ptr<AsyncPoolFixture> f;
  std::shared_ptr<thin::ThinVolume> vol;

  explicit MobiCealishStack(std::uint32_t depth) {
    f = std::make_shared<AsyncPoolFixture>(thin::AllocPolicy::kRandom, depth,
                                           4096, 4);
    rng = std::make_unique<crypto::SecureRandom>(42);
    core::DummyWriteConfig dc;
    dc.num_volumes = 4;
    dc.x = 10;
    engine = std::make_unique<core::DummyWriteEngine>(dc, *rng, nullptr);
    for (std::uint32_t id = 0; id < 4; ++id) f->pool->create_thin(id, 64);
    f->pool->set_alloc_rng(rng.get());
    f->pool->observe_volume(0, true);
    thin::ThinPool* pool = f->pool.get();
    core::DummyWriteEngine* eng = engine.get();
    f->pool->set_allocation_observer(
        [pool, eng](std::uint32_t, std::uint64_t) {
          eng->on_public_allocation(*pool);
        });
    vol = f->pool->open_thin(0);
  }
};

}  // namespace

TEST(AsyncEquivalence, DummyNoiseRidesTheQueueWithIdenticalState) {
  MobiCealishStack a(/*depth=*/1), b(/*depth=*/8);
  const util::Bytes data = pattern(128 * kBs, 9);
  a.vol->write_blocks(0, data);
  b.vol->write_blocks(0, data);
  b.f->data->drain();

  // Same triggers, same noise, same placement — bit-identical devices —
  // while the deep queue finishes sooner (noise overlaps client writes).
  EXPECT_GT(a.engine->stats().triggers, 0u);
  EXPECT_EQ(a.engine->stats().chunks_written, b.engine->stats().chunks_written);
  EXPECT_EQ(a.f->mem->raw(), b.f->mem->raw());
  EXPECT_LT(b.f->clock->now(), a.f->clock->now());
  EXPECT_GT(b.f->data->async_ios(), 0u);
}

// ---- dm-crypt pipelining -----------------------------------------------------

TEST(AsyncCrypt, PipelinedCiphertextMatchesSerialPath) {
  crypto::SecureRandom rng(7);
  const util::Bytes key = rng.bytes(32);
  for (const char* spec : {"aes-cbc-essiv:sha256", "aes-xts-plain64"}) {
    TimedFixture deep(/*depth=*/8, 512);
    auto serial_mem = std::make_shared<blockdev::MemBlockDevice>(512);
    dm::CryptTarget piped(deep.dev, spec, key, deep.clock);
    dm::CryptTarget serial(serial_mem, spec, key);

    const util::Bytes data = pattern(200 * kBs, 3);
    piped.write_blocks(5, data);    // > kPipelineBlocks: pipelined path
    serial.write_blocks(5, data);
    EXPECT_EQ(deep.mem->raw(), serial_mem->raw()) << spec;

    util::Bytes rd(200 * kBs);
    piped.read_blocks(5, 200, rd);  // pipelined read path
    EXPECT_EQ(rd, data) << spec;
  }
}

TEST(AsyncCrypt, CryptoOverlapsDeviceServiceOnTheVirtualClock) {
  crypto::SecureRandom rng(7);
  const util::Bytes key = rng.bytes(32);
  const util::Bytes data = pattern(256 * kBs, 3);
  // aesni model: 2 µs/blk cipher vs 2 µs/blk device write — a balanced
  // pipeline, where overlap should reclaim a large chunk of cipher time.
  auto run = [&](std::uint32_t depth) {
    TimedFixture f(depth, 1024);
    dm::CryptTarget crypt(f.dev, "aes-xts-plain64", key, f.clock,
                          dm::CryptCpuModel::aesni());
    crypt.write_blocks(0, data);
    crypt.drain();
    return f.clock->now();
  };
  const std::uint64_t serial_ns = run(1), piped_ns = run(8);
  EXPECT_LT(piped_ns, serial_ns);
  const std::uint64_t crypto_ns = 256ull * 2'000;
  EXPECT_LT(piped_ns, serial_ns - crypto_ns / 4);
}

TEST(AsyncCrypt, SubmitApiEncryptsAndDefersAvailability) {
  crypto::SecureRandom rng(11);
  const util::Bytes key = rng.bytes(32);
  TimedFixture f(/*depth=*/4, 64);
  dm::CryptTarget crypt(f.dev, "aes-cbc-essiv:sha256", key, f.clock,
                        dm::CryptCpuModel::snapdragon_s4());
  const util::Bytes data = pattern(4 * kBs, 8);
  const auto w = crypt.submit(write_req(0, data, /*cookie=*/5));
  // Device cannot start before the 4-block encryption (100 µs) finished.
  EXPECT_GE(w.complete_ns, 4 * 25'000u + 10 + 2000 + 4 * 2000u);

  util::Bytes rd(4 * kBs);
  const auto r = crypt.submit(read_req(0, 4, rd, /*cookie=*/6));
  EXPECT_EQ(rd, data);  // decrypted in place at submit
  EXPECT_GT(r.complete_ns, w.complete_ns);
  // Polling through the wrapper honours the timed device's clock: nothing
  // is ready until the timeline reaches the completions.
  EXPECT_TRUE(crypt.poll_completions().empty());
  const auto done = crypt.drain();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].user_data, 5u);
  EXPECT_EQ(done[1].user_data, 6u);
}

// ---- scheme-level equivalence and determinism --------------------------------

namespace {

constexpr char kPub[] = "async-public-pw";
constexpr char kHid[] = "async-hidden-pw";

struct SchemeRun {
  util::Bytes image;
  std::uint64_t clock_ns = 0;
};

SchemeRun run_scheme_workload(const std::string& name, std::uint32_t depth) {
  auto clock = std::make_shared<util::SimClock>();
  auto mem = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto timed = std::make_shared<blockdev::TimedDevice>(
      mem, blockdev::TimingModel::nexus4_emmc(), clock);
  timed->set_queue_depth(depth);

  api::SchemeOptions opts;
  opts.device = timed;
  opts.clock = clock;
  opts.public_password = kPub;
  opts.kdf_iterations = 16;
  opts.fs_inode_count = 128;
  opts.num_volumes = 4;
  opts.chunk_blocks = 4;
  opts.skip_random_fill = true;
  if (api::SchemeRegistry::entry(name).capabilities.has(
          api::Capability::kHiddenVolume)) {
    opts.hidden_passwords = {kHid};
  }
  auto scheme = api::SchemeRegistry::create(name, opts);
  EXPECT_TRUE(scheme->unlock(kPub).ok) << name;

  auto& fs = scheme->data_fs();
  fs.write_file("/a.bin", pattern(48 * kBs + 123, 1));
  fs.write_file("/b.bin", pattern(9 * kBs + 17, 2));
  fs.sync();
  const auto back = fs.read_file("/a.bin");
  EXPECT_EQ(back, pattern(48 * kBs + 123, 1)) << name;
  fs.unlink("/b.bin");
  fs.write_file("/c.bin", pattern(20 * kBs, 3));
  fs.sync();
  return {mem->raw(), clock->now()};
}

}  // namespace

TEST(AsyncEquivalence, EverySchemeEndsBitIdenticalAcrossQueueDepths) {
  for (const std::string& name : api::SchemeRegistry::names()) {
    const SchemeRun qd1 = run_scheme_workload(name, 1);
    for (const std::uint32_t depth : {2u, 8u}) {
      const SchemeRun deep = run_scheme_workload(name, depth);
      EXPECT_EQ(qd1.image, deep.image) << name << " qd" << depth;
      EXPECT_LE(deep.clock_ns, qd1.clock_ns) << name << " qd" << depth;
    }
  }
}

TEST(AsyncEquivalence, ReplayIsExactAtEveryDepthAndThreadCount) {
  for (const std::uint32_t depth : {1u, 2u, 8u}) {
    const SchemeRun a = run_scheme_workload("mobiceal", depth);
    const SchemeRun b = run_scheme_workload("mobiceal", depth);
    EXPECT_EQ(a.clock_ns, b.clock_ns) << depth;
    EXPECT_EQ(a.image, b.image) << depth;
  }
  // Crypto worker threads are wall-clock only: virtual results identical.
  const SchemeRun inline_run = run_scheme_workload("mobiceal", 8);
  crypto::CryptoWorkerPool::set_shared_threads(3);
  const SchemeRun threaded_run = run_scheme_workload("mobiceal", 8);
  crypto::CryptoWorkerPool::set_shared_threads(0);
  EXPECT_EQ(inline_run.clock_ns, threaded_run.clock_ns);
  EXPECT_EQ(inline_run.image, threaded_run.image);
}

// ---- crypto worker pool ------------------------------------------------------

TEST(CryptoPool, ParallelCoversEveryShardExactlyOnce) {
  crypto::CryptoWorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel(64, [&](std::size_t s) { ++hits[s]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CryptoPool, InlinePoolRunsOnCaller) {
  crypto::CryptoWorkerPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  bool same_thread = false;
  pool.parallel(1, [&](std::size_t) {
    same_thread = std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(same_thread);
  auto fut = pool.async([] {});
  EXPECT_TRUE(fut.valid());
  fut.get();
}

TEST(CryptoPool, ParallelPropagatesTheFirstException) {
  crypto::CryptoWorkerPool pool(2);
  EXPECT_THROW(pool.parallel(8,
                             [](std::size_t s) {
                               if (s == 3) {
                                 throw util::CryptoError("shard failure");
                               }
                             }),
               util::CryptoError);
}

TEST(CryptoPool, AsyncDeliversExceptionsThroughTheFuture) {
  crypto::CryptoWorkerPool pool(2);
  auto fut = pool.async([] { throw util::IoError("boom"); });
  EXPECT_THROW(fut.get(), util::IoError);
}

TEST(CryptoPool, ShardedRangeTransformMatchesSerial) {
  // A 4-thread pool shards the range transform; the ciphertext must equal
  // the serial reference byte for byte (every sector derives its own IV).
  crypto::SecureRandom rng(3);
  const util::Bytes key = rng.bytes(32);
  const auto cipher = crypto::make_sector_cipher("aes-xts-plain64", key);
  const std::size_t sectors_per_block = kBs / blockdev::kSectorSize;
  const util::Bytes pt = pattern(64 * kBs, 21);
  util::Bytes ref(pt.size());
  cipher->encrypt_range(16 * sectors_per_block, blockdev::kSectorSize, pt,
                        ref);

  auto mem = std::make_shared<blockdev::MemBlockDevice>(128);
  dm::CryptTarget crypt(mem, "aes-xts-plain64", key, nullptr,
                        dm::CryptCpuModel::zero(),
                        std::make_shared<crypto::CryptoWorkerPool>(4));
  crypt.write_blocks(16, pt);
  EXPECT_EQ(util::Bytes(mem->raw().begin() + 16 * kBs,
                        mem->raw().begin() + 16 * kBs + pt.size()),
            ref);

  util::Bytes rd(pt.size());
  crypt.read_blocks(16, 64, rd);  // sharded decrypt round-trips
  EXPECT_EQ(rd, pt);
}

// ---- range locks -------------------------------------------------------------

TEST(RangeLock, OverlappingAcquireBlocksUntilRelease) {
  thin::RangeLock lock;
  std::atomic<bool> acquired{false};
  auto g = lock.acquire(10, 20);
  std::thread t([&] {
    const auto g2 = lock.acquire(25, 10);  // overlaps [10, 30)
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  { const auto release = std::move(g); }  // guard releases on destruction
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(RangeLock, DisjointRangesProceedConcurrently) {
  thin::RangeLock lock;
  const auto g1 = lock.acquire(0, 16);
  const auto g2 = lock.acquire(16, 16);  // adjacent, not overlapping
  const auto g3 = lock.acquire(100, 1);
  SUCCEED();
}

TEST(RangeLock, ConcurrentWritersToOneVolumeSerialisePerRange) {
  // Two threads hammer disjoint halves of one thin volume through the
  // range-locked write path; contents and pool metadata must land exactly
  // (TSan exercises the locking). No virtual clock here — the SimClock is
  // single-submitter by contract.
  auto meta = std::make_shared<blockdev::MemBlockDevice>(512);
  auto data = std::make_shared<blockdev::MemBlockDevice>(4096);
  thin::ThinPool::Config cfg;
  cfg.chunk_blocks = 4;
  cfg.max_volumes = 8;
  cfg.policy = thin::AllocPolicy::kSequential;
  cfg.cpu = thin::ThinCpuModel::zero();
  auto pool = thin::ThinPool::format(meta, data, cfg);
  pool->create_thin(0, 64);
  auto vol = pool->open_thin(0);
  const util::Bytes lo = pattern(64 * kBs, 1), hi = pattern(64 * kBs, 2);
  std::thread a([&] { vol->write_blocks(0, lo); });
  std::thread b([&] { vol->write_blocks(128, hi); });
  a.join();
  b.join();
  EXPECT_EQ(vol->read_blocks(0, 64), lo);
  EXPECT_EQ(vol->read_blocks(128, 64), hi);
  EXPECT_TRUE(pool->check_consistency());
}

// ---- wait_until + timed segment submission -----------------------------------

TEST(QueueDepthModel, WaitUntilIsAPartialBarrier) {
  TimedFixture f(/*depth=*/4);
  const util::Bytes data = pattern(3 * kBs, 13);
  const auto a = f.dev->submit(write_req(0, {data.data(), kBs}, 1));
  const auto b = f.dev->submit(write_req(1, {data.data() + kBs, kBs}, 2));
  const auto c =
      f.dev->submit(write_req(2, {data.data() + 2 * kBs, kBs}, 3));
  ASSERT_LT(a.complete_ns, b.complete_ns);
  ASSERT_LT(b.complete_ns, c.complete_ns);

  // Before the first completion: nothing reaped, clock pinned at cutoff.
  EXPECT_TRUE(f.dev->wait_until(a.complete_ns - 1).empty());
  EXPECT_EQ(f.clock->now(), a.complete_ns - 1);

  // At the first completion: exactly that request, the rest stay in flight.
  const auto first = f.dev->wait_until(a.complete_ns);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].user_data, 1u);
  EXPECT_EQ(f.clock->now(), a.complete_ns);
  EXPECT_TRUE(f.dev->poll_completions().empty());

  // Past the last completion: wait_until reaps the remainder in
  // (complete_ns, ticket) order and the clock lands exactly on the cutoff
  // (unlike drain(), which stops at the last completion).
  const auto rest = f.dev->wait_until(c.complete_ns + 500);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].user_data, 2u);
  EXPECT_EQ(rest[1].user_data, 3u);
  EXPECT_EQ(f.clock->now(), c.complete_ns + 500);

  // A cutoff behind the clock is a pure (empty) reap, never a rewind.
  EXPECT_TRUE(f.dev->wait_until(0).empty());
  EXPECT_EQ(f.clock->now(), c.complete_ns + 500);
}

TEST(QueueDepthModel, TimedSegmentSubmitReportsPerSegmentCompletions) {
  TimedFixture f(/*depth=*/8);
  const util::Bytes buf = pattern(64 * kBs, 29);
  const std::uint64_t floor_ns = 123'456;
  const auto segs =
      blockdev::submit_write_segments_timed(*f.dev, 0, buf, floor_ns);
  ASSERT_EQ(segs.size(), 2u);  // 64 blocks / kSubmitSegmentBlocks
  // Data lands at submit time; only service time is deferred.
  EXPECT_EQ(util::Bytes(f.mem->raw().begin(),
                        f.mem->raw().begin() + 64 * kBs),
            buf);
  // The available_ns floor delays service start, so every segment
  // completes after it; segments finish in submission order here
  // (sequential writes share the serial command channel).
  EXPECT_GT(segs[0].complete_ns, floor_ns);
  EXPECT_LT(segs[0].complete_ns, segs[1].complete_ns);

  // The per-segment times are exactly what the partial barrier sees — the
  // flusher's contract: close one segment's timeline, leave the next in
  // flight.
  const auto first = f.dev->wait_until(segs[0].complete_ns);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].complete_ns, segs[0].complete_ns);
  const auto rest = f.dev->drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].complete_ns, segs[1].complete_ns);
  EXPECT_EQ(f.clock->now(), segs[1].complete_ns);
}

// ---- sharded virtual clocks --------------------------------------------------

namespace {

constexpr std::uint32_t kShardStripes = 4;

/// MobiCeal over 4 RAID-0 stripes at QD 8, each stripe's TimedDevice
/// advancing shard i % shards of a util::ClockDomain — the bench harness
/// geometry, shrunk to test size. Returns the *logical* image (the striped
/// reassembly, the multi-snapshot adversary's view) and the merged domain
/// time. Pass a domain to reuse one across runs (the reset regression).
SchemeRun run_sharded_workload(
    std::uint32_t shards,
    std::shared_ptr<util::ClockDomain> domain = nullptr) {
  if (!domain) domain = std::make_shared<util::ClockDomain>(shards);
  constexpr std::uint64_t kPerStripeBlocks = 16384 / kShardStripes;
  std::vector<std::shared_ptr<blockdev::BlockDevice>> raw;
  std::vector<std::shared_ptr<blockdev::BlockDevice>> timed;
  for (std::uint32_t i = 0; i < kShardStripes; ++i) {
    auto mem = std::make_shared<blockdev::MemBlockDevice>(kPerStripeBlocks);
    auto t = std::make_shared<blockdev::TimedDevice>(
        mem, blockdev::TimingModel::nexus4_emmc(), domain->shard_for(i));
    t->set_queue_depth(8);
    raw.push_back(std::move(mem));
    timed.push_back(std::move(t));
  }

  api::SchemeOptions opts;
  opts.stripe_devices = timed;
  opts.clock = domain->shard(0);
  if (shards > 1) opts.clock_domain = domain;
  opts.stack.queue_depth = 8;
  opts.stack.stripe_count = kShardStripes;
  opts.stack.crypto_lanes = kShardStripes;
  opts.stack.clock_shards = shards;
  opts.public_password = kPub;
  opts.hidden_passwords = {kHid};
  opts.kdf_iterations = 16;
  opts.fs_inode_count = 128;
  opts.num_volumes = 4;
  opts.chunk_blocks = 4;
  opts.skip_random_fill = true;
  auto scheme = api::SchemeRegistry::create("mobiceal", opts);
  EXPECT_TRUE(scheme->unlock(kPub).ok) << shards << " shards";

  auto& fs = scheme->data_fs();
  fs.write_file("/a.bin", pattern(48 * kBs + 123, 1));
  fs.write_file("/b.bin", pattern(9 * kBs + 17, 2));
  fs.sync();
  EXPECT_EQ(fs.read_file("/a.bin"), pattern(48 * kBs + 123, 1));
  fs.unlink("/b.bin");
  fs.write_file("/c.bin", pattern(20 * kBs, 3));
  fs.sync();

  dm::StripedTarget logical(raw, opts.stack.stripe_chunk_blocks);
  return {logical.snapshot(), domain->now()};
}

}  // namespace

TEST(ShardedClock, MergeIsWorkerThreadInvariantAndImageShardInvariant) {
  // The ISSUE 7 determinism bar: the same workload under 1/2/4/8 clock
  // shards and 1..4 crypto worker threads must produce bit-identical
  // logical images and — per shard count — identical merged timestamps.
  // (Merged time may legitimately differ BETWEEN shard counts: overlap
  // changes the timeline, never the bytes.)
  util::Bytes reference;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const SchemeRun base = run_sharded_workload(shards);
    if (reference.empty()) {
      reference = base.image;
    } else {
      EXPECT_EQ(base.image, reference) << shards << " shards";
    }
    for (int threads = 1; threads <= 4; ++threads) {
      crypto::CryptoWorkerPool::set_shared_threads(threads);
      const SchemeRun r = run_sharded_workload(shards);
      crypto::CryptoWorkerPool::set_shared_threads(0);
      EXPECT_EQ(r.image, base.image)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(r.clock_ns, base.clock_ns)
          << shards << " shards, " << threads << " threads";
    }
  }
}

TEST(ShardedClock, ShardingOverlapsButNeverReordersTheTimeline) {
  // More shards may only shorten (or keep) the merged elapsed time — the
  // whole point of independent shard advance — and replay exactly.
  const SchemeRun one = run_sharded_workload(1);
  const SchemeRun four = run_sharded_workload(4);
  EXPECT_LE(four.clock_ns, one.clock_ns);
  const SchemeRun again = run_sharded_workload(4);
  EXPECT_EQ(again.clock_ns, four.clock_ns);
  EXPECT_EQ(again.image, four.image);
}

TEST(ShardedClock, ResetBetweenRepsLeavesNoGhostTime) {
  // Benches reuse one domain across repetitions with a reset() between:
  // any virtual time leaking through a shard, a TimedDevice's slot state,
  // a thin CPU lane, or a pending flusher deadline would skew every
  // repetition after the first.
  auto domain = std::make_shared<util::ClockDomain>(kShardStripes);
  const SchemeRun rep1 = run_sharded_workload(kShardStripes, domain);
  EXPECT_GT(rep1.clock_ns, 0u);
  domain->reset();
  EXPECT_EQ(domain->now(), 0u);
  const SchemeRun rep2 = run_sharded_workload(kShardStripes, domain);
  EXPECT_EQ(rep2.clock_ns, rep1.clock_ns);
  EXPECT_EQ(rep2.image, rep1.image);
}

// ---- background cache flusher ------------------------------------------------

namespace {

/// MobiCeal behind a small writeback cache (heavy eviction + writeback
/// pressure), flusher thread on or off. Returns the raw image after
/// reboot() — the parity the deniability argument needs.
util::Bytes run_flusher_workload(bool flusher) {
  auto clock = std::make_shared<util::SimClock>();
  auto mem = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto timed = std::make_shared<blockdev::TimedDevice>(
      mem, blockdev::TimingModel::nexus4_emmc(), clock);
  timed->set_queue_depth(8);

  api::SchemeOptions opts;
  opts.device = timed;
  opts.clock = clock;
  opts.stack.queue_depth = 8;
  opts.stack.cache_blocks = 24;  // tiny: constant eviction + writeback
  opts.stack.cache_writeback = true;
  opts.stack.flusher.enabled = flusher;
  opts.public_password = kPub;
  opts.hidden_passwords = {kHid};
  opts.kdf_iterations = 16;
  opts.fs_inode_count = 128;
  opts.num_volumes = 4;
  opts.chunk_blocks = 4;
  opts.skip_random_fill = true;
  auto scheme = api::SchemeRegistry::create("mobiceal", opts);
  EXPECT_TRUE(scheme->unlock(kPub).ok);

  auto& fs = scheme->data_fs();
  fs.write_file("/a.bin", pattern(48 * kBs + 123, 1));
  fs.sync();
  // Re-dirty resident blocks: the pattern where background writeback (not
  // just eviction epochs) actually runs.
  fs.write_file("/a.bin", pattern(48 * kBs + 123, 4));
  fs.write_file("/c.bin", pattern(20 * kBs, 3));
  fs.sync();
  scheme->reboot();  // join the worker, flush, unmount
  return mem->raw();
}

}  // namespace

TEST(CacheFlusher, ImageIsBitIdenticalWithTheWorkerThreadOnOrOff) {
  const util::Bytes off = run_flusher_workload(false);
  const util::Bytes on = run_flusher_workload(true);
  EXPECT_EQ(on, off);
}
