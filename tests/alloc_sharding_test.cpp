// Sharded thin-pool allocator (PR 8): the distribution-invariance claim —
// any --alloc-shards value produces the exact allocation sequence of the
// historical single-bitmap scan — plus the batch paths, the v4 superblock
// round trip, the RangeLock table, and real-thread stress over the shard
// locks (the AllocSharding* suites run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "thin/alloc_shard.hpp"
#include "thin/range_lock.hpp"
#include "thin/thin_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mobiceal;

namespace {

// ShardedBitmap owns mutexes (immovable) — hand it out through a pointer.
std::unique_ptr<thin::ShardedBitmap> make_bitmap(std::uint64_t nr_chunks,
                                                 std::uint32_t shards) {
  auto bm = std::make_unique<thin::ShardedBitmap>();
  bm->init(nr_chunks, shards);
  return bm;
}

/// Drives `steps` random allocations with periodic frees — the churn shape
/// that exercises non-uniform per-shard free counts.
std::vector<std::uint64_t> churn_sequence(thin::ShardedBitmap& bm,
                                          std::uint64_t seed, int steps) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> got;
  std::vector<std::uint64_t> live;
  for (int i = 0; i < steps; ++i) {
    const auto c = bm.try_alloc_random(rng);
    if (!c) break;
    got.push_back(*c);
    live.push_back(*c);
    if (i % 3 == 2) {  // free the oldest third back, deterministically
      bm.free_chunk(live.front());
      live.erase(live.begin());
    }
  }
  return got;
}

thin::ThinPool::Config pool_config(std::uint32_t shards,
                                   thin::AllocPolicy policy) {
  thin::ThinPool::Config pc;
  pc.chunk_blocks = 4;
  pc.max_volumes = 8;
  pc.policy = policy;
  pc.cpu = thin::ThinCpuModel::zero();
  pc.alloc_shards = shards;
  return pc;
}

struct PoolFixture {
  std::shared_ptr<blockdev::MemBlockDevice> meta;
  std::shared_ptr<blockdev::MemBlockDevice> data;
  std::shared_ptr<thin::ThinPool> pool;
};

PoolFixture make_pool(std::uint32_t shards, thin::AllocPolicy policy,
                      std::uint64_t data_blocks = 4096) {
  PoolFixture f;
  f.meta = std::make_shared<blockdev::MemBlockDevice>(512);
  f.data = std::make_shared<blockdev::MemBlockDevice>(data_blocks);
  f.pool = thin::ThinPool::format(f.meta, f.data, pool_config(shards, policy));
  return f;
}

util::Bytes pattern_bytes(std::size_t n, std::uint32_t seed) {
  util::Bytes out(n);
  util::SplitMix64 gen(seed);
  gen.fill({out.data(), out.size()});
  return out;
}

/// The one legal cross-shard-count divergence in a device image: the thin
/// superblock DECLARES the knob (u32 at +60) and folds it into its checksum
/// (u64 at +64). Zero both wherever a superblock magic appears so image
/// comparisons prove every other bit — bitmap, mappings, data, dummy
/// traffic — is untouched by the shard count.
void mask_alloc_shards_field(util::Bytes& image) {
  static constexpr char kMagic[8] = {'T', 'H', 'I', 'N', 'P', 'O', 'O', 'L'};
  if (image.size() < 72) return;
  for (std::size_t off = 0; off + 72 <= image.size(); ++off) {
    if (std::memcmp(image.data() + off, kMagic, 8) == 0) {
      std::memset(image.data() + off + 60, 0, 12);
    }
  }
}

}  // namespace

// ---- deterministic equivalence ---------------------------------------------

TEST(AllocSharding, RandomSequenceInvariantAcrossShardCounts) {
  // The tentpole claim, directly: for ANY shard count, the weighted single
  // draw resolved in shard-region order equals the unsharded i-th-free-
  // chunk scan — chunk for chunk, under allocation/free churn.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    auto reference = make_bitmap(1000, 1);
    const auto expect = churn_sequence(*reference, seed, 600);
    ASSERT_FALSE(expect.empty());
    for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
      auto sharded = make_bitmap(1000, shards);
      EXPECT_EQ(churn_sequence(*sharded, seed, 600), expect)
          << "shards=" << shards << " seed=" << seed;
    }
  }
}

TEST(AllocSharding, ShardCountClampsToBitmapWords) {
  // 100 chunks = 2 bitmap words: asking for 64 shards must clamp to the
  // word count, never produce empty regions.
  auto bm = make_bitmap(100, 64);
  EXPECT_LE(bm->shard_count(), 2u);
  EXPECT_EQ(bm->total_free(), 100u);
  util::Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const auto c = bm->try_alloc_random(rng);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(seen.insert(*c).second) << "duplicate chunk " << *c;
    EXPECT_LT(*c, 100u);
  }
  EXPECT_EQ(bm->total_free(), 0u);
  EXPECT_FALSE(bm->try_alloc_random(rng).has_value());
}

TEST(AllocSharding, RandomBatchMatchesSingleDraws) {
  for (const std::uint32_t shards : {1u, 4u}) {
    auto single = make_bitmap(2048, shards);
    auto batched = make_bitmap(2048, shards);
    util::Xoshiro256 rng_a(9), rng_b(9);
    std::vector<std::uint64_t> expect, got;
    for (int i = 0; i < 300; ++i) {
      expect.push_back(*single->try_alloc_random(rng_a));
    }
    EXPECT_EQ(batched->alloc_random_batch(rng_b, 300, got), 300u);
    EXPECT_EQ(got, expect) << "shards=" << shards;
  }
}

TEST(AllocSharding, SequentialBatchMatchesSingleFirstFit) {
  for (const std::uint32_t shards : {1u, 4u}) {
    auto single = make_bitmap(1024, shards);
    auto batched = make_bitmap(1024, shards);
    // Pre-fragment both the same way so first-fit has to skip runs.
    for (std::uint64_t c = 0; c < 1024; c += 7) {
      single->free_chunk(*single->try_alloc_sequential());
      batched->free_chunk(*batched->try_alloc_sequential());
    }
    std::vector<std::uint64_t> expect, got;
    for (int i = 0; i < 500; ++i) {
      expect.push_back(*single->try_alloc_sequential());
    }
    EXPECT_EQ(batched->alloc_sequential_batch(500, got), 500u);
    EXPECT_EQ(got, expect) << "shards=" << shards;
    EXPECT_EQ(batched->cursor(), single->cursor());
  }
}

TEST(AllocSharding, SequentialBatchWrapsAcrossTheCursorShard) {
  auto bm = make_bitmap(256, 4);
  std::vector<std::uint64_t> first;
  ASSERT_EQ(bm->alloc_sequential_batch(200, first), 200u);
  for (std::uint64_t c = 0; c < 100; ++c) bm->free_chunk(c);
  // Cursor sits at 200; a 150-chunk batch must take [200,256) then wrap
  // into the freed head — one ring pass, order preserved.
  std::vector<std::uint64_t> got;
  ASSERT_EQ(bm->alloc_sequential_batch(150, got), 150u);
  std::vector<std::uint64_t> expect;
  for (std::uint64_t c = 200; c < 256; ++c) expect.push_back(c);
  for (std::uint64_t c = 0; c < 94; ++c) expect.push_back(c);
  EXPECT_EQ(got, expect);
}

TEST(AllocSharding, ChiSquareUniformOverRegions) {
  // Distribution shape, not just sequence equality: draws from a fresh
  // sharded bitmap land uniformly across 8 equal regions. 5120 draws,
  // df=7 — the statistic should sit far below the 26.0 (99.95%) cut.
  constexpr std::uint64_t kChunks = 4096;
  constexpr int kRegions = 8;
  std::vector<double> observed(kRegions, 0.0);
  double total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto bm = make_bitmap(kChunks, 4);
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 256; ++i) {
      const auto c = bm->try_alloc_random(rng);
      ASSERT_TRUE(c.has_value());
      observed[*c / (kChunks / kRegions)] += 1.0;
      total += 1.0;
    }
  }
  const std::vector<double> expected(kRegions, total / kRegions);
  EXPECT_LT(util::chi_square(observed, expected), 26.0);
}

TEST(AllocSharding, TxnLedgerVisitorMatchesVectorCompat) {
  auto bm = make_bitmap(512, 4);
  util::Xoshiro256 rng(5);
  std::set<std::uint64_t> allocated;
  for (int i = 0; i < 40; ++i) allocated.insert(*bm->try_alloc_random(rng));
  EXPECT_EQ(bm->txn_allocated_count(), 40u);
  std::set<std::uint64_t> visited;
  std::uint64_t prev_shard = 0;
  bm->visit_txn_allocated([&](std::uint64_t c) {
    visited.insert(c);
    // Region order across shards (within-shard order is allocation order).
    EXPECT_GE(bm->shard_of(c), prev_shard);
    prev_shard = bm->shard_of(c);
  });
  EXPECT_EQ(visited, allocated);
  bm->clear_txn();
  EXPECT_EQ(bm->txn_allocated_count(), 0u);
  bm->visit_txn_allocated([](std::uint64_t) { FAIL(); });
}

// ---- pool-level equivalence ------------------------------------------------

TEST(AllocSharding, PoolImagesIdenticalAcrossShardCounts) {
  auto a = make_pool(1, thin::AllocPolicy::kRandom);
  auto b = make_pool(4, thin::AllocPolicy::kRandom);
  util::Xoshiro256 rng_a(21), rng_b(21);
  a.pool->set_alloc_rng(&rng_a);
  b.pool->set_alloc_rng(&rng_b);
  for (auto& f : {a, b}) {
    f.pool->create_thin(0, 64);
    f.pool->create_thin(1, 64);
  }
  for (int i = 0; i < 12; ++i) {
    const auto data = pattern_bytes((i % 3 + 1) * 5 * 4096,
                                    static_cast<std::uint32_t>(i));
    const std::uint64_t lblock = (i / 2) * 6;
    for (auto& f : {a, b}) {
      f.pool->open_thin(i % 2)->write_blocks(lblock,
                                             {data.data(), data.size()});
    }
  }
  for (auto& f : {a, b}) f.pool->commit();
  EXPECT_EQ(a.data->raw(), b.data->raw());
  EXPECT_EQ(a.pool->mapping(0), b.pool->mapping(0));
  EXPECT_EQ(a.pool->mapping(1), b.pool->mapping(1));
  EXPECT_EQ(a.pool->free_chunks(), b.pool->free_chunks());
  EXPECT_TRUE(b.pool->check_consistency());
}

TEST(AllocSharding, BatchedWritePlanMatchesChunkSizedWrites) {
  // One range write spanning many chunks (the batched plan path) must
  // produce the image of the same bytes written chunk by chunk.
  auto a = make_pool(4, thin::AllocPolicy::kRandom);
  auto b = make_pool(4, thin::AllocPolicy::kRandom);
  util::Xoshiro256 rng_a(33), rng_b(33);
  a.pool->set_alloc_rng(&rng_a);
  b.pool->set_alloc_rng(&rng_b);
  a.pool->create_thin(0, 32);
  b.pool->create_thin(0, 32);
  const auto data = pattern_bytes(10 * 4 * 4096, 77);  // 10 chunks
  a.pool->open_thin(0)->write_blocks(8, {data.data(), data.size()});
  auto vol_b = b.pool->open_thin(0);
  for (int c = 0; c < 10; ++c) {
    vol_b->write_blocks(8 + c * 4,
                        {data.data() + c * 4 * 4096, std::size_t{4} * 4096});
  }
  EXPECT_EQ(a.data->raw(), b.data->raw());
  EXPECT_EQ(a.pool->mapping(0), b.pool->mapping(0));
}

TEST(AllocSharding, SuperblockRoundTripRestoresShardCount) {
  auto f = make_pool(4, thin::AllocPolicy::kRandom);
  const std::uint32_t formatted = f.pool->alloc_shards();
  EXPECT_GT(formatted, 1u);
  util::Xoshiro256 rng(11);
  f.pool->set_alloc_rng(&rng);
  f.pool->create_thin(0, 32);
  const auto data = pattern_bytes(6 * 4 * 4096, 3);
  f.pool->open_thin(0)->write_blocks(0, {data.data(), data.size()});
  const auto map_before = f.pool->mapping(0);
  const auto free_before = f.pool->free_chunks();
  f.pool->commit();
  f.pool.reset();

  auto reopened = thin::ThinPool::open(f.meta, f.data);
  EXPECT_EQ(reopened->alloc_shards(), formatted);
  EXPECT_EQ(reopened->mapping(0), map_before);
  EXPECT_EQ(reopened->free_chunks(), free_before);
  EXPECT_TRUE(reopened->check_consistency());
  util::Bytes got(data.size());
  reopened->open_thin(0)->read_blocks(0, 6 * 4, {got.data(), got.size()});
  EXPECT_EQ(got, data);
}

// ---- scheme-level parity (all six registered PDE systems) ------------------

class AllocShardingSchemes : public ::testing::TestWithParam<std::string> {};

TEST_P(AllocShardingSchemes, FinalImageIdenticalAtShards1And4) {
  // End to end through each scheme's full stack: the allocator shard count
  // is pure concurrency structure — apart from the superblock field that
  // declares it (masked below), the bits a multi-snapshot adversary images
  // must not move. (Translator schemes without a thin pool ignore the
  // knob; their equality is trivially exercised too.)
  util::Bytes images[2];
  int slot = 0;
  for (const std::uint32_t shards : {1u, 4u}) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
    api::SchemeOptions opts;
    opts.device = disk;
    opts.public_password = "shard-pub";
    opts.hidden_passwords = {"shard-hid"};
    opts.kdf_iterations = 16;
    opts.fs_inode_count = 128;
    opts.num_volumes = 4;
    opts.chunk_blocks = 4;
    opts.zero_cpu_models = true;
    opts.skip_random_fill = true;
    opts.stack.alloc_shards = shards;
    auto scheme = api::SchemeRegistry::create(GetParam(), opts);
    ASSERT_TRUE(scheme->unlock("shard-pub").ok);
    scheme->data_fs().write_file("/a.bin", pattern_bytes(30000, 1));
    scheme->data_fs().write_file("/b.bin", pattern_bytes(50000, 2));
    scheme->data_fs().sync();
    scheme->reboot();
    images[slot++] = disk->snapshot();
  }
  mask_alloc_shards_field(images[0]);
  mask_alloc_shards_field(images[1]);
  EXPECT_EQ(images[0], images[1]);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AllocShardingSchemes,
    ::testing::ValuesIn(api::SchemeRegistry::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---- security canary -------------------------------------------------------

TEST(AllocSharding, SecurityCanaryFullDeviceImageZeroDriftSharded) {
  // The strongest zero-drift statement: a full MobiCeal lifecycle (public
  // writes, fast switch, hidden writes, dummy traffic, GC, reboot) at
  // alloc_shards=4 leaves the raw device bit-identical to the 1-shard run
  // outside the superblock field that declares the knob — so EVERY
  // adversary statistic (entropy maps, metadata forensics, accountability
  // games) is unchanged, not just the ones we re-run here.
  util::Bytes images[2];
  int slot = 0;
  for (const std::uint32_t shards : {1u, 4u}) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
    core::MobiCealDevice::Config cfg;
    cfg.num_volumes = 6;
    cfg.chunk_blocks = 4;
    cfg.kdf_iterations = 16;
    cfg.fs_inode_count = 128;
    cfg.thin_cpu = thin::ThinCpuModel::zero();
    cfg.crypt_cpu = dm::CryptCpuModel::zero();
    cfg.rng_seed = 97;
    cfg.dummy.lambda = 0.5;
    cfg.alloc_shards = shards;
    auto dev = core::MobiCealDevice::initialize(disk, cfg, "canary-pub",
                                                {"canary-hid"});
    dev->boot("canary-pub");
    for (int i = 0; i < 6; ++i) {
      dev->data_fs().write_file("/p" + std::to_string(i),
                                pattern_bytes(20000, 10 + i));
    }
    dev->data_fs().sync();
    ASSERT_TRUE(dev->switch_to_hidden("canary-hid"));
    dev->data_fs().write_file("/h.bin", pattern_bytes(60000, 99));
    dev->collect_garbage(0.5);
    dev->reboot();
    EXPECT_TRUE(dev->pool().check_consistency()) << "shards=" << shards;
    images[slot++] = disk->snapshot();
  }
  mask_alloc_shards_field(images[0]);
  mask_alloc_shards_field(images[1]);
  EXPECT_EQ(images[0], images[1]);
}

// ---- RangeLock table -------------------------------------------------------

TEST(RangeLock, TableHitPathReturnsOneInstancePerVolume) {
  thin::RangeLockTable table;
  table.resize(8);
  thin::RangeLock* first = &table.get(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(&table.get(3), first);
  EXPECT_NE(&table.get(4), first);
}

TEST(RangeLock, TableResetCreatesAFreshLock) {
  thin::RangeLockTable table;
  table.resize(4);
  thin::RangeLock* before = &table.get(2);
  table.reset(2);
  // The slot lazily re-creates; other slots are untouched.
  thin::RangeLock* other = &table.get(1);
  EXPECT_EQ(&table.get(1), other);
  (void)before;  // freed — only compared, never dereferenced
  EXPECT_NE(&table.get(2), nullptr);
}

TEST(RangeLock, TableConcurrentGetConverges) {
  thin::RangeLockTable table;
  table.resize(32);
  std::vector<thin::RangeLock*> seen(8 * 32, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t id = 0; id < 32; ++id) {
        seen[static_cast<std::size_t>(t) * 32 + id] = &table.get(id);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint32_t id = 0; id < 32; ++id) {
    for (int t = 1; t < 8; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t) * 32 + id], seen[id]);
    }
  }
}

// ---- real-thread stress (TSan territory) -----------------------------------

TEST(AllocShardingThreads, ConcurrentRandomAllocatorsNeverCollide) {
  constexpr std::uint64_t kChunks = 1 << 14;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  auto bm = make_bitmap(kChunks, 8);
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::uint64_t> freed(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 2 == 0) {
          const auto c = bm->try_alloc_random(rng);
          ASSERT_TRUE(c.has_value());
          got[t].push_back(*c);
        } else {
          std::vector<std::uint64_t> batch;
          ASSERT_EQ(bm->alloc_random_batch(rng, 3, batch), 3u);
          got[t].insert(got[t].end(), batch.begin(), batch.end());
        }
        if (i % 5 == 4) {  // churn: hand one back
          bm->free_chunk(got[t].back());
          got[t].pop_back();
          ++freed[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  std::uint64_t total = 0, total_freed = 0;
  for (const auto& v : got) {
    total += v.size();
    for (const std::uint64_t c : v) {
      EXPECT_TRUE(all.insert(c).second) << "chunk " << c << " double-owned";
      EXPECT_TRUE(bm->test(c));
    }
  }
  for (const std::uint64_t f : freed) total_freed += f;
  EXPECT_EQ(bm->total_free(), kChunks - total);
  // The ledger records every allocation event — including later-freed ones.
  EXPECT_EQ(bm->txn_allocated_count(), total + total_freed);
  EXPECT_EQ(bm->txn_freed_count(), total_freed);
}

TEST(AllocShardingThreads, MixedSequentialAndRandomThreadsStayExact) {
  auto bm = make_bitmap(1 << 13, 4);
  std::vector<std::vector<std::uint64_t>> got(6);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(7 + static_cast<std::uint64_t>(t));
      std::vector<std::uint64_t> batch;
      for (int i = 0; i < 100; ++i) {
        batch.clear();
        if (t % 2 == 0) {
          bm->alloc_random_batch(rng, 4, batch);
        } else {
          bm->alloc_sequential_batch(4, batch);
        }
        got[t].insert(got[t].end(), batch.begin(), batch.end());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  std::uint64_t total = 0;
  for (const auto& v : got) {
    total += v.size();
    for (const std::uint64_t c : v) {
      EXPECT_TRUE(all.insert(c).second);
    }
  }
  EXPECT_EQ(total, 6u * 100u * 4u);
  EXPECT_EQ(bm->total_free(), (std::uint64_t{1} << 13) - total);
}

TEST(AllocShardingThreads, PoolWritersOnSeparateVolumesStayConsistent) {
  // One pool, one real submitter thread per tenant through the synchronous
  // write path — shard mutexes, the draw mutex, the range-lock table and
  // the metadata mutex all under genuine contention.
  constexpr int kTenants = 4;
  constexpr int kRounds = 24;
  auto f = make_pool(4, thin::AllocPolicy::kRandom, /*data_blocks=*/8192);
  for (int v = 0; v < kTenants; ++v) f.pool->create_thin(v, 32);
  std::vector<std::thread> threads;
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      auto vol = f.pool->open_thin(t);
      for (int r = 0; r < kRounds; ++r) {
        const auto data =
            pattern_bytes(4 * 4096, static_cast<std::uint32_t>(t * 100 + r));
        vol->write_blocks(static_cast<std::uint64_t>(r) * 4,
                          {data.data(), data.size()});
      }
    });
  }
  for (auto& th : threads) th.join();
  f.pool->commit();
  EXPECT_TRUE(f.pool->check_consistency());
  for (int t = 0; t < kTenants; ++t) {
    auto vol = f.pool->open_thin(t);
    for (int r = 0; r < kRounds; ++r) {
      const auto expect =
          pattern_bytes(4 * 4096, static_cast<std::uint32_t>(t * 100 + r));
      util::Bytes got(expect.size());
      vol->read_blocks(static_cast<std::uint64_t>(r) * 4, 4,
                       {got.data(), got.size()});
      EXPECT_EQ(got, expect) << "tenant " << t << " round " << r;
    }
  }
}
