// End-to-end batched I/O pipeline tests: thin-pool extent-run resolution
// (contiguous, fragmented, holes), batched-vs-per-block equivalence for
// CryptTarget / DummyWriteEngine / the full MobiCeal-style stack, vectored
// TimedDevice costing, and filesystem range I/O over fragmented layouts.
#include <gtest/gtest.h>

#include <memory>

#include "blockdev/block_device.hpp"
#include "blockdev/timed_device.hpp"
#include "core/dummy_write.hpp"
#include "crypto/random.hpp"
#include "dm/crypt_target.hpp"
#include "fs/ext_fs.hpp"
#include "fs/fat_fs.hpp"
#include "thin/thin_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace mobiceal;
using thin::AllocPolicy;
using thin::ExtentRun;
using thin::ThinPool;

namespace {

constexpr std::size_t kBs = blockdev::kDefaultBlockSize;

struct PoolFixture {
  std::shared_ptr<blockdev::MemBlockDevice> meta;
  std::shared_ptr<blockdev::MemBlockDevice> data;
  std::shared_ptr<ThinPool> pool;

  explicit PoolFixture(AllocPolicy policy, std::uint64_t data_blocks = 1024,
                       std::uint32_t chunk_blocks = 4) {
    meta = std::make_shared<blockdev::MemBlockDevice>(512);
    data = std::make_shared<blockdev::MemBlockDevice>(data_blocks);
    ThinPool::Config cfg;
    cfg.chunk_blocks = chunk_blocks;
    cfg.max_volumes = 8;
    cfg.policy = policy;
    cfg.cpu = thin::ThinCpuModel::zero();
    pool = ThinPool::format(meta, data, cfg);
  }
};

util::Bytes pattern(std::size_t n, std::uint8_t salt) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(salt + i * 131);
  }
  return out;
}

/// Writes one block at vchunk-granularity to force a specific provisioning
/// order (sequential policy maps provisioning order to physical order).
void provision(thin::ThinVolume& vol, std::uint64_t vchunk,
               std::uint32_t chunk_blocks) {
  vol.write_block(vchunk * chunk_blocks, pattern(kBs, 1));
}

}  // namespace

// ---- extent-run resolution ---------------------------------------------------

TEST(ExtentResolution, ContiguousMappingYieldsOneRun) {
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 16);
  auto vol = f.pool->open_thin(0);
  // In-order provisioning with sequential allocation: vchunk i -> phys i.
  for (std::uint64_t v = 0; v < 4; ++v) provision(*vol, v, 4);

  const auto runs = f.pool->resolve_extents(0, 0, 16);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].lblock, 0u);
  EXPECT_EQ(runs[0].blocks, 16u);
  EXPECT_EQ(runs[0].phys_block, 0u);
  EXPECT_TRUE(runs[0].mapped);
}

TEST(ExtentResolution, FragmentedMappingSplitsAtDiscontinuities) {
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 16);
  auto vol = f.pool->open_thin(0);
  // Provision out of order: vchunk 0 -> phys 0, vchunk 2 -> phys 1,
  // vchunk 1 -> phys 2. Logical order is then phys 0, 2, 1: fragmented.
  provision(*vol, 0, 4);
  provision(*vol, 2, 4);
  provision(*vol, 1, 4);

  const auto runs = f.pool->resolve_extents(0, 0, 12);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].phys_block, 0u * 4);
  EXPECT_EQ(runs[1].phys_block, 2u * 4);
  EXPECT_EQ(runs[2].phys_block, 1u * 4);
  for (const ExtentRun& r : runs) {
    EXPECT_TRUE(r.mapped);
    EXPECT_EQ(r.blocks, 4u);
  }
  // Runs tile the range in logical order.
  EXPECT_EQ(runs[0].lblock, 0u);
  EXPECT_EQ(runs[1].lblock, 4u);
  EXPECT_EQ(runs[2].lblock, 8u);
}

TEST(ExtentResolution, HolesMergeIntoUnmappedRuns) {
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 16);
  auto vol = f.pool->open_thin(0);
  // Map vchunks 0 and 3; vchunks 1-2 stay holes.
  provision(*vol, 0, 4);
  provision(*vol, 3, 4);

  const auto runs = f.pool->resolve_extents(0, 0, 16);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].mapped);
  EXPECT_EQ(runs[0].blocks, 4u);
  EXPECT_FALSE(runs[1].mapped);
  EXPECT_EQ(runs[1].lblock, 4u);
  EXPECT_EQ(runs[1].blocks, 8u);  // two adjacent holes merge
  EXPECT_TRUE(runs[2].mapped);
  EXPECT_EQ(runs[2].lblock, 12u);
}

TEST(ExtentResolution, PartialChunkRangesAndBounds) {
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 4);
  auto vol = f.pool->open_thin(0);
  provision(*vol, 0, 4);
  provision(*vol, 1, 4);

  // Mid-chunk start, mid-chunk end, crossing the chunk boundary.
  const auto runs = f.pool->resolve_extents(0, 2, 4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].lblock, 2u);
  EXPECT_EQ(runs[0].blocks, 4u);
  EXPECT_EQ(runs[0].phys_block, 2u);

  EXPECT_THROW(f.pool->resolve_extents(0, 0, 17), util::IoError);
  EXPECT_THROW(f.pool->resolve_extents(3, 0, 1), util::IoError);
}

TEST(ExtentResolution, RandomPolicyRunsStayWithinChunks) {
  PoolFixture f(AllocPolicy::kRandom);
  f.pool->create_thin(0, 8);
  auto vol = f.pool->open_thin(0);
  for (std::uint64_t v = 0; v < 8; ++v) provision(*vol, v, 4);

  const auto runs = f.pool->resolve_extents(0, 0, 32);
  std::uint64_t covered = 0;
  for (const ExtentRun& r : runs) {
    EXPECT_TRUE(r.mapped);
    EXPECT_EQ(r.lblock, covered);
    covered += r.blocks;
    // Random allocation rarely places neighbours contiguously, but each
    // run must still be chunk-consistent with the mapping table.
    const std::uint64_t vchunk = r.lblock / 4;
    EXPECT_EQ(r.phys_block,
              f.pool->mapping(0)[vchunk] * 4 + r.lblock % 4);
  }
  EXPECT_EQ(covered, 32u);
}

// ---- batched vs per-block equivalence ----------------------------------------

TEST(BatchedEquivalence, CryptTargetProducesIdenticalCiphertext) {
  for (const char* spec : {"aes-cbc-essiv:sha256", "aes-xts-plain64"}) {
    crypto::SecureRandom rng(7);
    const util::Bytes key = rng.bytes(32);
    auto lower_a = std::make_shared<blockdev::MemBlockDevice>(64);
    auto lower_b = std::make_shared<blockdev::MemBlockDevice>(64);
    dm::CryptTarget a(lower_a, spec, key);
    dm::CryptTarget b(lower_b, spec, key);

    const util::Bytes data = pattern(16 * kBs, 3);
    for (std::uint64_t i = 0; i < 16; ++i) {
      a.write_block(5 + i, {data.data() + i * kBs, kBs});
    }
    b.write_blocks(5, data);
    EXPECT_EQ(lower_a->raw(), lower_b->raw()) << spec;

    // Reads agree across paths and decrypt to the plaintext.
    util::Bytes per_block(16 * kBs), batched(16 * kBs);
    for (std::uint64_t i = 0; i < 16; ++i) {
      a.read_block(5 + i, {per_block.data() + i * kBs, kBs});
    }
    b.read_blocks(5, 16, batched);
    EXPECT_EQ(per_block, data) << spec;
    EXPECT_EQ(batched, data) << spec;
  }
}

TEST(BatchedEquivalence, NoiseChunkMatchesPerBlockReference) {
  // write_noise_chunk now issues one vectored write; the bytes must equal
  // the historical per-block loop: n sequential Rng::fill draws of one
  // block each, which is the same byte stream as one fill of n blocks.
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 8);

  crypto::SecureRandom noise(99), placement(5);
  const auto phys = f.pool->write_noise_chunk(0, 3, noise, placement);
  ASSERT_TRUE(phys.has_value());

  crypto::SecureRandom ref_noise(99);
  util::Bytes expected(3 * kBs);
  for (std::uint32_t b = 0; b < 3; ++b) {
    ref_noise.fill({expected.data() + b * kBs, kBs});
  }
  EXPECT_EQ(f.data->read_blocks(*phys * 4, 3), expected);
}

TEST(BatchedEquivalence, DummyWriteStackStateIsBitIdentical) {
  // Two identical MobiCeal-style stacks (random allocation + observer-driven
  // dummy writes, same seeds). One takes the per-block write path, the
  // other the vectored path: every allocation, dummy burst, and noise byte
  // must land identically, leaving bit-identical data devices.
  auto build = [](std::unique_ptr<crypto::SecureRandom>& rng,
                  std::unique_ptr<core::DummyWriteEngine>& engine) {
    auto f = std::make_shared<PoolFixture>(AllocPolicy::kRandom, 2048, 4);
    rng = std::make_unique<crypto::SecureRandom>(42);
    core::DummyWriteConfig dc;
    dc.num_volumes = 4;
    dc.x = 10;  // triggers often enough to matter at this size
    engine = std::make_unique<core::DummyWriteEngine>(dc, *rng, nullptr);
    for (std::uint32_t id = 0; id < 4; ++id) f->pool->create_thin(id, 32);
    f->pool->set_alloc_rng(rng.get());
    f->pool->observe_volume(0, true);
    ThinPool* pool = f->pool.get();
    core::DummyWriteEngine* eng = engine.get();
    f->pool->set_allocation_observer(
        [pool, eng](std::uint32_t, std::uint64_t) {
          eng->on_public_allocation(*pool);
        });
    return f;
  };

  std::unique_ptr<crypto::SecureRandom> rng_a, rng_b;
  std::unique_ptr<core::DummyWriteEngine> eng_a, eng_b;
  auto fa = build(rng_a, eng_a);
  auto fb = build(rng_b, eng_b);
  auto va = fa->pool->open_thin(0);
  auto vb = fb->pool->open_thin(0);

  const util::Bytes data = pattern(48 * kBs, 9);
  for (std::uint64_t i = 0; i < 48; ++i) {
    va->write_block(i, {data.data() + i * kBs, kBs});
  }
  vb->write_blocks(0, data);

  EXPECT_GT(eng_a->stats().triggers, 0u);
  EXPECT_EQ(eng_a->stats().chunks_written, eng_b->stats().chunks_written);
  EXPECT_EQ(fa->data->raw(), fb->data->raw());

  // Reads agree between paths as well.
  util::Bytes per_block(48 * kBs), batched(48 * kBs);
  for (std::uint64_t i = 0; i < 48; ++i) {
    va->read_block(i, {per_block.data() + i * kBs, kBs});
  }
  vb->read_blocks(0, 48, batched);
  EXPECT_EQ(per_block, data);
  EXPECT_EQ(batched, data);
}

TEST(BatchedEquivalence, ThinRangeReadZeroFillsHoles) {
  PoolFixture f(AllocPolicy::kSequential);
  f.pool->create_thin(0, 4);
  auto vol = f.pool->open_thin(0);
  const util::Bytes w = pattern(4 * kBs, 17);
  vol->write_blocks(4, w);  // vchunk 1 only; 0, 2, 3 stay holes

  const util::Bytes all = vol->read_blocks(0, 16);
  EXPECT_EQ(util::Bytes(all.begin(), all.begin() + 4 * kBs),
            util::Bytes(4 * kBs, 0));
  EXPECT_EQ(util::Bytes(all.begin() + 4 * kBs, all.begin() + 8 * kBs), w);
  EXPECT_EQ(util::Bytes(all.begin() + 8 * kBs, all.end()),
            util::Bytes(8 * kBs, 0));
}

// ---- vectored service-time model ---------------------------------------------

TEST(TimedDevice, VectoredRequestCostsOneCommandPlusNTransfers) {
  auto clock = std::make_shared<util::SimClock>();
  blockdev::TimingModel m;
  m.per_io_ns = 10;
  m.read_per_block_ns = 100;
  m.write_per_block_ns = 200;
  m.random_read_penalty_ns = 1000;
  m.random_write_penalty_ns = 2000;
  m.flush_ns = 5000;
  auto dev = std::make_shared<blockdev::TimedDevice>(
      std::make_shared<blockdev::MemBlockDevice>(64), m, clock);

  // First request is random: per_io + 8 transfers + one write penalty.
  dev->write_blocks(0, pattern(8 * kBs, 1));
  EXPECT_EQ(clock->now(), 10u + 8 * 200 + 2000);
  // Sequential follow-up: no penalty, still one per_io.
  util::Bytes buf(8 * kBs);
  dev->read_blocks(8, 8, buf);
  EXPECT_EQ(clock->now(), 3610u + 10 + 8 * 100);
  EXPECT_EQ(dev->writes(), 8u);
  EXPECT_EQ(dev->reads(), 8u);
  EXPECT_EQ(dev->sequential_ios(), 1u);
  EXPECT_EQ(dev->random_ios(), 1u);
  EXPECT_EQ(dev->vectored_ios(), 2u);

  // The same 8 blocks per-block: 8 per_io charges -> strictly slower.
  dev->reset_counters();
  const std::uint64_t t0 = clock->now();
  dev->write_blocks(16, pattern(8 * kBs, 2));
  const std::uint64_t vectored_ns = clock->now() - t0;
  const std::uint64_t t1 = clock->now();
  for (std::uint64_t i = 0; i < 8; ++i) {
    dev->write_block(32 + i, pattern(kBs, 3));
  }
  EXPECT_LT(vectored_ns, clock->now() - t1);
}

// ---- filesystem range I/O ----------------------------------------------------

TEST(FsRangeIo, ExtFsFragmentedFileRoundTrips) {
  auto dev = std::make_shared<blockdev::MemBlockDevice>(4096);
  auto fs = fs::ExtFs::format(dev, 256);
  // Interleave two files so their blocks alternate on disk, defeating run
  // coalescing; content must still round-trip through the range paths.
  fs->create("/a");
  fs->create("/b");
  const util::Bytes a = pattern(kBs, 1), b = pattern(kBs, 2);
  for (int i = 0; i < 24; ++i) {
    fs->write("/a", static_cast<std::uint64_t>(i) * kBs, a);
    fs->write("/b", static_cast<std::uint64_t>(i) * kBs, b);
  }
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(fs->read("/a", static_cast<std::uint64_t>(i) * kBs, kBs), a);
  }
  // Whole-file read crosses all fragments in one call.
  const util::Bytes whole = fs->read("/b", 0, 24 * kBs);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(util::Bytes(whole.begin() + i * kBs,
                          whole.begin() + (i + 1) * kBs),
              b) << i;
  }
  EXPECT_TRUE(fs->fsck());
}

TEST(FsRangeIo, ExtFsUnalignedWritesAcrossRunBoundaries) {
  auto dev = std::make_shared<blockdev::MemBlockDevice>(4096);
  auto fs = fs::ExtFs::format(dev, 256);
  fs->create("/f");
  // Unaligned offset + length spanning many blocks: partial head, vectored
  // middle, partial tail.
  const util::Bytes data = pattern(10 * kBs + 777, 5);
  fs->write("/f", 1234, data);
  EXPECT_EQ(fs->read("/f", 1234, data.size()), data);
  // Overwrite a sub-range and re-verify both the overlap and the remainder.
  const util::Bytes patch = pattern(3 * kBs, 6);
  fs->write("/f", 5000, patch);
  EXPECT_EQ(fs->read("/f", 5000, patch.size()), patch);
  EXPECT_EQ(fs->read("/f", 1234, 100),
            util::Bytes(data.begin(), data.begin() + 100));
  EXPECT_TRUE(fs->fsck());
}

TEST(FsRangeIo, FatFsChainCoalescingRoundTrips) {
  auto dev = std::make_shared<blockdev::MemBlockDevice>(4096);
  auto fs = fs::FatFs::format(dev);
  fs->create("/seq");
  // Sequential allocation: clusters are consecutive -> one long run.
  const util::Bytes data = pattern(32 * kBs + 123, 7);
  fs->write("/seq", 0, data);
  EXPECT_EQ(fs->read("/seq", 0, data.size()), data);

  // Fragment the chain: free a middle file, then extend another through
  // the freed clusters (FAT first-fit reuses them out of order).
  fs->create("/x");
  fs->create("/y");
  fs->write("/x", 0, pattern(8 * kBs, 8));
  fs->write("/y", 0, pattern(8 * kBs, 9));
  fs->unlink("/x");
  const util::Bytes tail = pattern(16 * kBs, 10);
  fs->write("/seq", data.size(), tail);
  EXPECT_EQ(fs->read("/seq", data.size(), tail.size()), tail);
  EXPECT_EQ(fs->read("/seq", 0, 100),
            util::Bytes(data.begin(), data.begin() + 100));
}
