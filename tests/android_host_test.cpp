// AndroidHost state-machine tests: UI/lifecycle transitions, timing
// accounting for the Table II flows, and the side-channel mount switching.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "core/android_host.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using core::AndroidHost;
using core::AuthResult;
using core::Mode;

namespace {

constexpr char kPub[] = "host-public";
constexpr char kHid[] = "host-hidden";
constexpr char kLock[] = "5544";

struct HostFixture {
  std::shared_ptr<util::SimClock> clock;
  std::unique_ptr<AndroidHost> host;

  explicit HostFixture(bool isolate = true, std::uint64_t seed = 31) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
    clock = std::make_shared<util::SimClock>();
    core::MobiCealDevice::Config cfg;
    cfg.num_volumes = 6;
    cfg.chunk_blocks = 4;
    cfg.kdf_iterations = 16;
    cfg.fs_inode_count = 128;
    cfg.rng_seed = seed;
    auto dev =
        core::MobiCealDevice::initialize(disk, cfg, kPub, {kHid}, clock);
    AndroidHost::Options opt;
    opt.isolate_side_channels = isolate;
    opt.screen_lock_password = kLock;
    host = std::make_unique<AndroidHost>(std::move(dev), clock, opt);
  }
};

}  // namespace

TEST(AndroidHost, LifecycleStateMachine) {
  HostFixture f;
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kOff);
  // Operations before power-on are rejected.
  EXPECT_THROW(f.host->enter_boot_password(kPub), util::PolicyError);
  EXPECT_THROW(f.host->lock_screen(), util::PolicyError);

  f.host->power_on();
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kPasswordPrompt);
  EXPECT_THROW(f.host->power_on(), util::PolicyError);  // double power-on

  // Wrong password keeps the prompt.
  EXPECT_EQ(f.host->enter_boot_password("nope"), AuthResult::kWrongPassword);
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kPasswordPrompt);

  EXPECT_EQ(f.host->enter_boot_password(kPub), AuthResult::kPublic);
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kUnlocked);
  EXPECT_EQ(f.host->device_mode(), Mode::kPublic);

  f.host->lock_screen();
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kScreenLocked);
  EXPECT_THROW(f.host->lock_screen(), util::PolicyError);  // double lock
  EXPECT_THROW(f.host->app_write_file("/x", util::Bytes(10, 0)),
               util::PolicyError);  // locked UI blocks apps
}

TEST(AndroidHost, ScreenLockThreeWayBranch) {
  HostFixture f;
  f.host->power_on();
  f.host->enter_boot_password(kPub);
  f.host->lock_screen();
  // Branch 1: normal unlock.
  EXPECT_EQ(f.host->enter_lock_screen_password(kLock),
            AndroidHost::LockResult::kUnlocked);
  EXPECT_EQ(f.host->device_mode(), Mode::kPublic);
  f.host->lock_screen();
  // Branch 2: garbage rejected, still public, still locked.
  EXPECT_EQ(f.host->enter_lock_screen_password("junk"),
            AndroidHost::LockResult::kRejected);
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kScreenLocked);
  // Branch 3: hidden password switches modes.
  EXPECT_EQ(f.host->enter_lock_screen_password(kHid),
            AndroidHost::LockResult::kSwitchedToHidden);
  EXPECT_EQ(f.host->device_mode(), Mode::kHidden);
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kUnlocked);
}

TEST(AndroidHost, HiddenBootIsolatesImmediately) {
  // Booting straight into hidden mode (basic scheme) must isolate side
  // channels just like the fast switch does.
  HostFixture f;
  f.host->power_on();
  EXPECT_EQ(f.host->enter_boot_password(kHid), AuthResult::kHidden);
  f.host->app_write_file("/straight_in.bin", util::Bytes(5000, 1));
  EXPECT_TRUE(f.host->devlog_persistent().empty());
  EXPECT_EQ(f.host->tmpfs_records().size(), 1u);
  f.host->reboot();
  EXPECT_TRUE(f.host->tmpfs_records().empty());  // RAM cleared
}

TEST(AndroidHost, RebootFromAnyStateLandsAtPrompt) {
  HostFixture f;
  f.host->power_on();
  f.host->enter_boot_password(kPub);
  f.host->reboot();
  EXPECT_EQ(f.host->ui_state(), AndroidHost::UiState::kPasswordPrompt);
  EXPECT_EQ(f.host->device_mode(), Mode::kLocked);
  // And the cycle works again.
  EXPECT_EQ(f.host->enter_boot_password(kPub), AuthResult::kPublic);
}

TEST(AndroidHost, TimingFastSwitchVsRebootGap) {
  // The Table II relation, as a regression guard on the timing model:
  // fast switch is 5-10 s, a reboot cycle is at least 5x that.
  HostFixture f;
  f.host->power_on();
  f.host->enter_boot_password(kPub);
  f.host->lock_screen();
  const double t0 = f.clock->now_seconds();
  f.host->enter_lock_screen_password(kHid);
  const double fast = f.clock->now_seconds() - t0;
  const double t1 = f.clock->now_seconds();
  f.host->reboot();
  f.host->enter_boot_password(kPub);
  const double slow = f.clock->now_seconds() - t1;
  EXPECT_GT(fast, 5.0);
  EXPECT_LT(fast, 10.0);
  EXPECT_GT(slow, 5.0 * fast);
}

TEST(AndroidHost, FailedSwitchRestartsFrameworkAndStaysPublic) {
  // A wrong guess at the lock screen costs a framework bounce but must not
  // leave the device hidden, unmounted, or unlocked.
  HostFixture f;
  f.host->power_on();
  f.host->enter_boot_password(kPub);
  f.host->app_write_file("/before.txt", util::Bytes(100, 2));
  f.host->lock_screen();
  EXPECT_EQ(f.host->enter_lock_screen_password("wrong-hidden"),
            AndroidHost::LockResult::kRejected);
  EXPECT_EQ(f.host->device_mode(), Mode::kPublic);
  // Unlock normally and the data is still reachable.
  EXPECT_EQ(f.host->enter_lock_screen_password(kLock),
            AndroidHost::LockResult::kUnlocked);
  EXPECT_EQ(f.host->app_read_file("/before.txt"), util::Bytes(100, 2));
}

TEST(AndroidHost, ActivityRecordsCarrySessionGroundTruth) {
  HostFixture f(/*isolate=*/false);  // shared-OS model: everything persists
  f.host->power_on();
  f.host->enter_boot_password(kPub);
  f.host->app_write_file("/pub.jpg", util::Bytes(100, 3));
  f.host->lock_screen();
  f.host->enter_lock_screen_password(kHid);
  f.host->app_write_file("/hid.mp4", util::Bytes(100, 4));
  ASSERT_EQ(f.host->devlog_persistent().size(), 2u);
  EXPECT_FALSE(f.host->devlog_persistent()[0].hidden_session);
  EXPECT_TRUE(f.host->devlog_persistent()[1].hidden_session);
  EXPECT_EQ(f.host->devlog_persistent()[1].path, "/hid.mp4");
}

TEST(AndroidHost, ConstructorValidatesArguments) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto clock = std::make_shared<util::SimClock>();
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 4;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  auto dev = core::MobiCealDevice::initialize(disk, cfg, kPub, {}, clock);
  EXPECT_THROW(AndroidHost(nullptr, clock, {}), util::PolicyError);
  EXPECT_THROW(AndroidHost(std::move(dev), nullptr, {}), util::PolicyError);
}
