// Deep PDE security properties, end to end against raw device images —
// the invariants of DESIGN.md §6 that the unit suites don't cover directly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace mobiceal;
using adversary::Snapshot;
using core::AuthResult;
using core::MobiCealDevice;

namespace {

constexpr char kPub[] = "prop-public";
constexpr char kHid[] = "prop-hidden";

MobiCealDevice::Config prop_config(std::uint64_t seed) {
  MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  cfg.rng_seed = seed;
  return cfg;
}

util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed * 7 + i);
  }
  return out;
}

}  // namespace

TEST(SecurityProperties, HiddenHeadsIndistinguishableFromDummyHeads) {
  // Invariant 6.5 applied to the head chunks specifically: the encrypted
  // password block at the head of a hidden volume must pass the same
  // randomness battery as the noise heads of dummy volumes, and no simple
  // statistic may separate the two populations.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = MobiCealDevice::initialize(disk, prop_config(51), kPub, {kHid});
  const std::uint32_t hidden_k = dev->hidden_index(kHid);

  auto data_dev = dev->pool().data_device();
  std::map<std::uint32_t, double> head_entropy;
  for (std::uint32_t paper = 2; paper <= 6; ++paper) {
    const auto& map = dev->pool().mapping(MobiCealDevice::thin_id(paper));
    ASSERT_NE(map[0], thin::kUnmapped);
    util::Bytes head(4096);
    data_dev->read_block(map[0] * dev->pool().chunk_blocks(), head);
    EXPECT_TRUE(util::looks_random(head)) << "volume V" << paper;
    head_entropy[paper] = util::shannon_entropy(head);
  }
  // The hidden head's entropy sits inside the dummy heads' range (±noise).
  double dummy_min = 8.0, dummy_max = 0.0;
  for (const auto& [paper, h] : head_entropy) {
    if (paper == hidden_k) continue;
    dummy_min = std::min(dummy_min, h);
    dummy_max = std::max(dummy_max, h);
  }
  EXPECT_GE(head_entropy[hidden_k], dummy_min - 0.05);
  EXPECT_LE(head_entropy[hidden_k], dummy_max + 0.05);
}

TEST(SecurityProperties, WrongPasswordSweepNeverUnlocksAnything) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = MobiCealDevice::initialize(disk, prop_config(52), kPub, {kHid});
  for (int i = 0; i < 64; ++i) {
    const std::string guess = "brute-force-" + std::to_string(i);
    EXPECT_EQ(dev->boot(guess), AuthResult::kWrongPassword) << guess;
    EXPECT_EQ(dev->mode(), core::Mode::kLocked);
  }
  // The real passwords still work afterwards (no lockout side effects).
  EXPECT_EQ(dev->boot(kPub), AuthResult::kPublic);
}

TEST(SecurityProperties, SnapshotRevealsNoPlaintextAnywhere) {
  // After realistic mixed usage, no 4 KiB block of the raw image contains
  // the stored plaintext (all volumes sit behind dm-crypt).
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = MobiCealDevice::initialize(disk, prop_config(53), kPub, {kHid});
  const std::string marker =
      "TOPSECRET-MARKER-STRING-THAT-MUST-NEVER-TOUCH-DISK-IN-PLAINTEXT";
  util::Bytes doc;
  while (doc.size() < 40000) {
    doc.insert(doc.end(), marker.begin(), marker.end());
  }
  dev->boot(kPub);
  dev->data_fs().write_file("/public_doc.txt", doc);
  ASSERT_TRUE(dev->switch_to_hidden(kHid));
  dev->data_fs().write_file("/hidden_doc.txt", doc);
  dev->reboot();

  const auto snap = Snapshot::take(*disk);
  const std::string image(snap.image.begin(), snap.image.end());
  EXPECT_EQ(image.find(marker), std::string::npos);
}

TEST(SecurityProperties, PoolStaysConsistentUnderMixedWorkload) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto cfg = prop_config(54);
  cfg.dummy.lambda = 0.5;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  EXPECT_TRUE(dev->pool().check_consistency());

  dev->boot(kPub);
  for (int i = 0; i < 12; ++i) {
    dev->data_fs().write_file("/f" + std::to_string(i),
                              payload(30000, static_cast<std::uint8_t>(i)));
  }
  dev->data_fs().sync();
  EXPECT_TRUE(dev->pool().check_consistency());

  ASSERT_TRUE(dev->switch_to_hidden(kHid));
  dev->data_fs().write_file("/h.bin", payload(80000, 99));
  const auto reclaimed = dev->collect_garbage(0.5);
  (void)reclaimed;
  EXPECT_TRUE(dev->pool().check_consistency());
  dev->reboot();
  EXPECT_TRUE(dev->pool().check_consistency());
}

TEST(SecurityProperties, DummyBudgetNoFalsePositivesOnPurePublicUse) {
  // The budget attack must not cry wolf: across seeds, a device that holds
  // NO hidden data (only dummy traffic) is never flagged. False positives
  // would let users be coerced over noise — and would also let real hidden
  // data hide behind "the detector always fires anyway".
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
    auto cfg = prop_config(seed);
    auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {});
    dev->boot(kPub);
    dev->data_fs().write_file("/base", payload(50000, 1));
    dev->reboot();
    const auto d0 = Snapshot::take(*disk);

    dev->boot(kPub);
    for (int i = 0; i < 12; ++i) {
      dev->data_fs().write_file("/p" + std::to_string(i),
                                payload(45000, static_cast<std::uint8_t>(i)));
    }
    dev->reboot();
    const auto d1 = Snapshot::take(*disk);

    adversary::ThinMetadataReader r0(d0), r1(d1);
    const auto rep = adversary::dummy_budget_attack(r0, r1, /*lambda=*/1.0);
    EXPECT_FALSE(rep.suspects_hidden_data)
        << "seed " << seed << ": " << rep.reasoning;
  }
}

TEST(SecurityProperties, MetadataForensicsMatchLiveStateAfterChurn) {
  // Whatever the adversary parses from a cold image must agree exactly
  // with the live pool — otherwise either the reader or the commit path is
  // wrong, and either bug breaks the deniability analysis.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto cfg = prop_config(55);
  cfg.dummy.lambda = 0.5;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  dev->boot(kPub);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 6; ++i) {
      dev->data_fs().write_file(
          "/r" + std::to_string(round) + "f" + std::to_string(i),
          payload(25000, static_cast<std::uint8_t>(round * 6 + i)));
    }
    if (round == 1) {
      for (int i = 0; i < 3; ++i) {
        dev->data_fs().unlink("/r1f" + std::to_string(i));
      }
    }
    dev->data_fs().sync();
  }
  dev->reboot();

  adversary::ThinMetadataReader reader(Snapshot::take(*disk));
  for (std::uint32_t paper = 1; paper <= 6; ++paper) {
    const std::uint32_t id = MobiCealDevice::thin_id(paper);
    EXPECT_EQ(reader.chunks_of_volume(id).size(),
              dev->pool().mapped_chunks(id))
        << "volume V" << paper;
  }
  EXPECT_TRUE(reader.orphan_chunks().empty());
  EXPECT_EQ(reader.superblock().txn_id, dev->pool().txn_id());
}

TEST(SecurityProperties, GcNeverTouchesPublicOrActiveHiddenChunks) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto cfg = prop_config(56);
  cfg.dummy.lambda = 0.3;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  dev->boot(kPub);
  for (int i = 0; i < 15; ++i) {
    dev->data_fs().write_file("/p" + std::to_string(i),
                              payload(40000, static_cast<std::uint8_t>(i)));
  }
  ASSERT_TRUE(dev->switch_to_hidden(kHid));
  dev->data_fs().write_file("/h.bin", payload(60000, 77));
  dev->data_fs().sync();

  const auto pub_before = dev->pool().mapped_chunks(0);
  const std::uint32_t hid_id =
      MobiCealDevice::thin_id(dev->hidden_index(kHid));
  const auto hid_before = dev->pool().mapped_chunks(hid_id);
  dev->collect_garbage(0.8);
  EXPECT_EQ(dev->pool().mapped_chunks(0), pub_before);
  EXPECT_EQ(dev->pool().mapped_chunks(hid_id), hid_before);
}

TEST(SecurityProperties, VolumeCountDoesNotRevealHiddenCount) {
  // Devices initialised with 0, 1 and 2 hidden passwords expose identical
  // volume-table shapes: same n, all volumes active, all same virtual
  // size. (The *number of hidden volumes* is the secret; Sec. IV-C.)
  std::vector<std::vector<std::string>> configs = {
      {}, {kHid}, {kHid, "second-hidden"}};
  std::vector<std::vector<std::uint64_t>> shapes;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
    auto dev = MobiCealDevice::initialize(disk, prop_config(57), kPub,
                                          configs[c]);
    adversary::ThinMetadataReader reader(Snapshot::take(*disk));
    std::vector<std::uint64_t> shape;
    for (const auto& v : reader.volumes()) {
      shape.push_back(v.active ? v.virtual_chunks : 0);
    }
    shapes.push_back(std::move(shape));
  }
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[1], shapes[2]);
}

TEST(SecurityProperties, FreshDeviceHeadsHaveMappedChunkZeroEverywhere) {
  // The head-seeding rule: if only hidden volumes had their first virtual
  // chunk mapped, "vchunk 0 mapped" would leak which volumes are hidden.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = MobiCealDevice::initialize(disk, prop_config(58), kPub, {kHid});
  adversary::ThinMetadataReader reader(Snapshot::take(*disk));
  for (std::uint32_t v = 1; v < 6; ++v) {  // all non-public volumes
    EXPECT_NE(reader.volumes()[v].map[0], thin::kUnmapped)
        << "volume V" << v + 1;
  }
}
