// util substrate tests: deterministic RNGs, statistics (the adversary's
// randomness battery must be trustworthy in both directions), virtual
// clock, and byte helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"

using namespace mobiceal;

// ---- RNGs --------------------------------------------------------------------

TEST(Rng, XoshiroDeterministicPerSeed) {
  util::Xoshiro256 a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  util::Xoshiro256 a2(5);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowStaysInRange) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  util::Xoshiro256 rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(1, 4);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBelowIsUniformChiSquare) {
  util::Xoshiro256 rng(9);
  const int kBuckets = 16, kDraws = 64000;
  std::vector<double> observed(kBuckets, 0.0);
  std::vector<double> expected(kBuckets, double(kDraws) / kBuckets);
  for (int i = 0; i < kDraws; ++i) {
    observed[rng.next_below(kBuckets)] += 1.0;
  }
  // 15 dof, 99.9th percentile ~ 37.7.
  EXPECT_LT(util::chi_square(observed, expected), 37.7);
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  util::Xoshiro256 rng(10);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, FillCoversPartialWords) {
  util::Xoshiro256 rng(11);
  util::Bytes buf(13, 0);  // not a multiple of 8
  rng.fill(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 8);  // all-zero tail would indicate a fill bug
}

TEST(Rng, JumpDecorrelatesStreams) {
  util::Xoshiro256 a(12), b(12);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---- statistics ---------------------------------------------------------------------

TEST(Stats, RunningStatsKnownValues) {
  util::RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsDegenerate) {
  util::RunningStats s;
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, EntropyExtremes) {
  const util::Bytes zeros(4096, 0);
  EXPECT_DOUBLE_EQ(util::shannon_entropy(zeros), 0.0);
  util::Bytes uniform(256 * 16);
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    uniform[i] = static_cast<std::uint8_t>(i % 256);
  }
  EXPECT_DOUBLE_EQ(util::shannon_entropy(uniform), 8.0);
}

TEST(Stats, LooksRandomAcceptsCsprngOutput) {
  util::Xoshiro256 rng(13);
  util::Bytes buf(8192);
  rng.fill(buf);
  EXPECT_TRUE(util::looks_random(buf));
}

TEST(Stats, LooksRandomRejectsStructuredData) {
  EXPECT_FALSE(util::looks_random(util::Bytes(4096, 0)));       // zeros
  EXPECT_FALSE(util::looks_random(util::Bytes(4096, 0xFF)));    // ones
  util::Bytes text;
  const std::string sample =
      "The quick brown fox jumps over the lazy dog. Plaintext has low "
      "byte-level entropy compared to ciphertext. ";
  while (text.size() < 4096) {
    text.insert(text.end(), sample.begin(), sample.end());
  }
  text.resize(4096);
  EXPECT_FALSE(util::looks_random(text));
  // Counter pattern: high byte-entropy but fails the bit-level runs test?
  // It actually has near-uniform histogram; looks_random may accept it —
  // the adversary pairs this with structure-aware checks. Document by
  // asserting the monobit statistic at least stays finite.
  EXPECT_LT(util::monobit_statistic(text), 1e9);
  // Short buffers are never classified as random.
  EXPECT_FALSE(util::looks_random(util::Bytes(16, 0xA5)));
}

TEST(Stats, ChiSquareFlagsBias) {
  // Heavily biased byte distribution scores far above the uniform band.
  util::Bytes biased(4096);
  util::Xoshiro256 rng(14);
  for (auto& b : biased) {
    b = static_cast<std::uint8_t>(rng.next_below(4));  // only 4 symbols
  }
  EXPECT_GT(util::chi_square_bytes(biased), 10000.0);
  util::Bytes fair(65536);
  rng.fill(fair);
  EXPECT_LT(util::chi_square_bytes(fair), 400.0);  // 255 dof, generous
}

TEST(Stats, ChiSquareValidatesInput) {
  EXPECT_THROW(util::chi_square({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(util::chi_square({1.0}, {0.0}), std::invalid_argument);
}

TEST(Stats, LatencyHistogramBasics) {
  util::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);

  h.record(100);
  h.record(1000);
  h.record(10000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 10000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), (100.0 + 1000.0 + 10000.0) / 3.0);
  // Log2 buckets report the upper edge of the sample's bucket.
  EXPECT_EQ(h.percentile_ns(0.0), 127u);    // bit_width(100)=7 -> 2^7-1
  EXPECT_EQ(h.percentile_ns(0.5), 1023u);   // bit_width(1000)=10
  EXPECT_EQ(h.percentile_ns(1.0), 16383u);  // bit_width(10000)=14
  EXPECT_GE(h.percentile_ns(1.0), h.max_ns() / 2);
}

TEST(Stats, LatencyHistogramMergeOrderIndependent) {
  util::Xoshiro256 rng(77);
  util::LatencyHistogram a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t ns = rng.next_below(1u << 20);
    whole.record(ns);
    (i % 2 ? a : b).record(ns);
  }
  util::LatencyHistogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  for (const auto* m : {&ab, &ba}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->min_ns(), whole.min_ns());
    EXPECT_EQ(m->max_ns(), whole.max_ns());
    EXPECT_DOUBLE_EQ(m->mean_ns(), whole.mean_ns());
    for (double p : {0.5, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(m->percentile_ns(p), whole.percentile_ns(p));
    }
  }
  // Merging an empty histogram is a no-op.
  util::LatencyHistogram empty;
  util::LatencyHistogram copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), whole.count());
  EXPECT_EQ(copy.percentile_ns(0.99), whole.percentile_ns(0.99));
}

// ---- SimClock -----------------------------------------------------------------------------

TEST(SimClock, AdvancesAndConverts) {
  util::SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(util::SimClock::from_micros(5));
  clock.advance(util::SimClock::from_millis(2));
  clock.advance(util::SimClock::from_seconds(0.001));
  EXPECT_EQ(clock.now(), 5'000u + 2'000'000u + 1'000'000u);
  EXPECT_NEAR(clock.now_seconds(), 0.003005, 1e-9);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

// ---- byte helpers ----------------------------------------------------------------------------

TEST(Bytes, EndianHelpers) {
  std::uint8_t buf[8];
  util::store_be32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(util::load_be32(buf), 0x01020304u);
  util::store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(util::load_be64(buf), 0x0102030405060708ULL);
  util::store_le<std::uint32_t>(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(util::load_le<std::uint32_t>(buf), 0x01020304u);
}

TEST(Bytes, XorIntoAndErrors) {
  util::Bytes a = util::from_hex("00ff00ff");
  const util::Bytes b = util::from_hex("0f0f0f0f");
  util::xor_into(a, b);
  EXPECT_EQ(util::to_hex(a), "0ff00ff0");
  util::Bytes c(3);
  EXPECT_THROW(util::xor_into(a, c), std::invalid_argument);
}

TEST(Bytes, SecureZeroClears) {
  util::Bytes secret(64, 0x5A);
  util::secure_zero(secret);
  EXPECT_TRUE(std::all_of(secret.begin(), secret.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(Bytes, SecureBytesBasics) {
  util::SecureBytes sb(32);
  EXPECT_EQ(sb.size(), 32u);
  sb[0] = 0xAA;
  EXPECT_EQ(sb.span()[0], 0xAA);
  util::SecureBytes moved = std::move(sb);
  EXPECT_EQ(moved[0], 0xAA);
}

TEST(Bytes, StringConversions) {
  const auto b = util::bytes_of("abc");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(util::string_of(b), "abc");
}
