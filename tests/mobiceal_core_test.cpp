// Integration tests for the MobiCeal core: initialisation, boot paths,
// fast switching, dummy writes, key separation, garbage collection, and the
// PDE safety invariants from DESIGN.md §6.
#include <gtest/gtest.h>

#include <set>

#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace mobiceal;
using core::AuthResult;
using core::MobiCealDevice;
using core::Mode;

namespace {

constexpr char kPub[] = "decoy-password";
constexpr char kHid[] = "hidden-password";
constexpr char kHid2[] = "second-hidden-pw";

MobiCealDevice::Config small_config() {
  MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;  // fast tests; RFC vectors cover the KDF itself
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  cfg.rng_seed = 42;
  return cfg;
}

std::shared_ptr<blockdev::MemBlockDevice> small_disk() {
  return std::make_shared<blockdev::MemBlockDevice>(16384);  // 64 MiB
}

util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed ^ (i * 31));
  }
  return out;
}

}  // namespace

TEST(MobiCeal, InitializeCreatesAllVolumes) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  EXPECT_EQ(dev->mode(), Mode::kLocked);
  for (std::uint32_t paper = 1; paper <= 6; ++paper) {
    EXPECT_TRUE(dev->pool().volume_exists(MobiCealDevice::thin_id(paper)));
  }
  // Every non-public volume has its head chunk mapped (hidden heads must be
  // indistinguishable from dummy heads).
  for (std::uint32_t paper = 2; paper <= 6; ++paper) {
    EXPECT_GE(dev->pool().mapped_chunks(MobiCealDevice::thin_id(paper)), 1u);
  }
}

TEST(MobiCeal, BootWithDecoyEntersPublicMode) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  EXPECT_EQ(dev->boot(kPub), AuthResult::kPublic);
  EXPECT_EQ(dev->mode(), Mode::kPublic);
  dev->data_fs().write_file("/notes.txt", util::bytes_of("public data"));
  EXPECT_EQ(dev->data_fs().read_file("/notes.txt"),
            util::bytes_of("public data"));
}

TEST(MobiCeal, BootWithHiddenEntersHiddenMode) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  EXPECT_EQ(dev->boot(kHid), AuthResult::kHidden);
  EXPECT_EQ(dev->mode(), Mode::kHidden);
  dev->data_fs().write_file("/secret.txt", util::bytes_of("sensitive"));
  EXPECT_EQ(dev->data_fs().read_file("/secret.txt"),
            util::bytes_of("sensitive"));
}

TEST(MobiCeal, WrongPasswordStaysLocked) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  EXPECT_EQ(dev->boot("not-a-password"), AuthResult::kWrongPassword);
  EXPECT_EQ(dev->mode(), Mode::kLocked);
  EXPECT_THROW(dev->data_fs(), util::PolicyError);
}

TEST(MobiCeal, FastSwitchPublicToHidden) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  dev->data_fs().write_file("/public.txt", util::bytes_of("cover story"));

  EXPECT_FALSE(dev->switch_to_hidden("wrong-guess"));
  EXPECT_EQ(dev->mode(), Mode::kPublic);  // unchanged after bad guess

  EXPECT_TRUE(dev->switch_to_hidden(kHid));
  EXPECT_EQ(dev->mode(), Mode::kHidden);
  dev->data_fs().write_file("/evidence.mp4", payload(20000, 7));
  EXPECT_EQ(dev->data_fs().read_file("/evidence.mp4"), payload(20000, 7));

  // One-way: switching back requires a reboot.
  EXPECT_THROW(dev->switch_to_hidden(kHid), util::PolicyError);
  dev->reboot();
  EXPECT_EQ(dev->mode(), Mode::kLocked);
  EXPECT_EQ(dev->boot(kPub), AuthResult::kPublic);
  EXPECT_EQ(dev->data_fs().read_file("/public.txt"),
            util::bytes_of("cover story"));
}

TEST(MobiCeal, DataPersistsAcrossRebootAndAttach) {
  auto disk = small_disk();
  const auto cfg = small_config();
  {
    auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
    ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
    dev->data_fs().write_file("/s.bin", payload(50000, 9));
    dev->reboot();
  }
  // Fresh attach models a power cycle: all state from disk.
  auto dev = MobiCealDevice::attach(disk, cfg);
  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  EXPECT_EQ(dev->data_fs().read_file("/s.bin"), payload(50000, 9));
}

TEST(MobiCeal, PublicAndHiddenAreIsolated) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  dev->data_fs().write_file("/a.txt", util::bytes_of("public"));
  ASSERT_TRUE(dev->switch_to_hidden(kHid));
  EXPECT_FALSE(dev->data_fs().exists("/a.txt"));  // different namespace
  dev->data_fs().write_file("/b.txt", util::bytes_of("hidden"));
  dev->reboot();
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  EXPECT_FALSE(dev->data_fs().exists("/b.txt"));
  EXPECT_TRUE(dev->data_fs().exists("/a.txt"));
}

TEST(MobiCeal, DecoyAndHiddenKeysDiffer) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  const auto kd = dev->derive_key(kPub);
  const auto kh = dev->derive_key(kHid);
  EXPECT_FALSE(util::ct_equal(kd.span(), kh.span()));
  // Key derivation is deterministic.
  EXPECT_TRUE(util::ct_equal(kh.span(), dev->derive_key(kHid).span()));
}

TEST(MobiCeal, HiddenIndexInRangeAndDeterministic) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  const std::uint32_t k = dev->hidden_index(kHid);
  EXPECT_GE(k, 2u);
  EXPECT_LE(k, 6u);
  EXPECT_EQ(k, dev->hidden_index(kHid));
}

TEST(MobiCeal, MultiLevelDeniabilityTwoHiddenVolumes) {
  auto disk = small_disk();
  auto dev =
      MobiCealDevice::initialize(disk, small_config(), kPub, {kHid, kHid2});
  EXPECT_NE(dev->hidden_index(kHid), dev->hidden_index(kHid2));

  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  dev->data_fs().write_file("/level1.txt", util::bytes_of("L1"));
  dev->reboot();

  ASSERT_EQ(dev->boot(kHid2), AuthResult::kHidden);
  EXPECT_FALSE(dev->data_fs().exists("/level1.txt"));
  dev->data_fs().write_file("/level2.txt", util::bytes_of("L2"));
  dev->reboot();

  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  EXPECT_EQ(dev->data_fs().read_file("/level1.txt"), util::bytes_of("L1"));
}

TEST(MobiCeal, DummyWritesFireOnPublicTraffic) {
  auto disk = small_disk();
  auto cfg = small_config();
  cfg.dummy.x = 50;
  cfg.dummy.lambda = 1.0;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  for (int i = 0; i < 40; ++i) {
    dev->data_fs().write_file("/f" + std::to_string(i), payload(30000, i));
  }
  const auto& stats = dev->dummy_engine().stats();
  EXPECT_GT(stats.public_allocations, 0u);
  EXPECT_GT(stats.triggers, 0u);  // ~24.5% of hundreds of allocations
  EXPECT_GT(stats.chunks_written, 0u);
}

TEST(MobiCeal, HiddenWritesDoNotFireDummyEngine) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  const auto before = dev->dummy_engine().stats().public_allocations;
  dev->data_fs().write_file("/h.bin", payload(100000, 3));
  EXPECT_EQ(dev->dummy_engine().stats().public_allocations, before);
}

TEST(MobiCeal, PublicWritesNeverOverwriteHiddenData) {
  // DESIGN.md §6.4 — the global bitmap prevents cross-volume clobbering
  // even when the public volume writes heavily after hidden data exists.
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  const auto secret = payload(200000, 5);
  dev->data_fs().write_file("/secret.bin", secret);
  dev->reboot();

  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  for (int i = 0; i < 30; ++i) {
    dev->data_fs().write_file("/bulk" + std::to_string(i), payload(65536, i));
  }
  dev->reboot();

  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  EXPECT_EQ(dev->data_fs().read_file("/secret.bin"), secret);
}

TEST(MobiCeal, GcRequiresHiddenMode) {
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  EXPECT_THROW(dev->collect_garbage(), util::PolicyError);
}

TEST(MobiCeal, GcReclaimsDummySpaceButSparesHiddenVolumes) {
  auto disk = small_disk();
  auto cfg = small_config();
  cfg.dummy.x = 50;
  cfg.dummy.lambda = 0.5;  // aggressive dummy traffic
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid, kHid2});

  ASSERT_EQ(dev->boot(kHid2), AuthResult::kHidden);
  const auto secret2 = payload(120000, 11);
  dev->data_fs().write_file("/deep.bin", secret2);
  dev->reboot();

  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  for (int i = 0; i < 40; ++i) {
    dev->data_fs().write_file("/p" + std::to_string(i), payload(40000, i));
  }
  dev->reboot();

  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  const auto free_before = dev->pool().free_chunks();
  // Protect the second hidden volume by supplying its password.
  const auto reclaimed = dev->collect_garbage(0.5, {kHid2});
  EXPECT_GT(reclaimed, 0u);
  EXPECT_GT(dev->pool().free_chunks(), free_before);
  dev->reboot();

  // The protected hidden volume survived GC.
  ASSERT_EQ(dev->boot(kHid2), AuthResult::kHidden);
  EXPECT_EQ(dev->data_fs().read_file("/deep.bin"), secret2);
}

TEST(MobiCeal, RejectsDegenerateConfigs) {
  auto disk = small_disk();
  auto cfg = small_config();
  EXPECT_THROW(
      MobiCealDevice::initialize(disk, cfg, kPub, {kPub}),
      util::PolicyError);  // hidden == public password
  cfg.num_volumes = 1;
  EXPECT_THROW(MobiCealDevice::initialize(disk, cfg, kPub, {}),
               util::PolicyError);
  cfg.num_volumes = 3;
  EXPECT_THROW(
      MobiCealDevice::initialize(disk, cfg, kPub, {"a", "b", "c"}),
      util::PolicyError);  // more hidden passwords than volumes
}

TEST(MobiCeal, BasicSchemeNoHiddenPasswords) {
  // Sec. IV-B: encryption without deniability still creates dummy volumes.
  auto disk = small_disk();
  auto cfg = small_config();
  cfg.num_volumes = 2;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {});
  ASSERT_EQ(dev->boot(kPub), AuthResult::kPublic);
  dev->data_fs().write_file("/f.txt", util::bytes_of("x"));
  EXPECT_EQ(dev->mode(), Mode::kPublic);
}

TEST(MobiCeal, NonPublicChunksLookRandomOnDisk) {
  // DESIGN.md §6.5: everything outside the public volume's chunks must be
  // indistinguishable from randomness in a raw snapshot.
  auto disk = small_disk();
  auto dev = MobiCealDevice::initialize(disk, small_config(), kPub, {kHid});
  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  dev->data_fs().write_file("/s.bin", payload(100000, 2));
  dev->reboot();

  // Inspect hidden-volume chunks through the pool mapping: raw contents
  // must pass the randomness battery.
  const auto& map = dev->pool().mapping(MobiCealDevice::thin_id(
      dev->hidden_index(kHid)));
  auto data_dev = dev->pool().data_device();
  int checked = 0;
  for (std::uint64_t v = 0; v < map.size() && checked < 8; ++v) {
    if (map[v] == thin::kUnmapped) continue;
    util::Bytes chunk(data_dev->block_size());
    data_dev->read_block(map[v] * dev->pool().chunk_blocks(), chunk);
    // Skip never-written tail blocks (zeros are fine — dummy chunks have
    // them too); check the written head block.
    if (util::shannon_entropy(chunk) < 1.0) continue;
    EXPECT_TRUE(util::looks_random(chunk));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}
