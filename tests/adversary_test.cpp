// Adversary toolkit tests: snapshot diffing, forensic metadata parsing,
// the concrete multi-snapshot attacks (which must succeed against the
// single-snapshot baselines and fail against MobiCeal), and the
// side-channel audit.
#include <gtest/gtest.h>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/security_game.hpp"
#include "adversary/side_channel.hpp"
#include "adversary/snapshot.hpp"
#include "baselines/mobipluto.hpp"
#include "core/android_host.hpp"
#include "core/mobiceal.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using adversary::Snapshot;

namespace {

constexpr char kPub[] = "adv-public";
constexpr char kHid[] = "adv-hidden";

util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 11);
  }
  return out;
}

core::MobiCealDevice::Config mc_config(std::uint64_t seed = 9) {
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  cfg.rng_seed = seed;
  return cfg;
}

}  // namespace

TEST(SnapshotDiff, ClassifiesChanges) {
  blockdev::MemBlockDevice dev(16);
  const auto d0 = Snapshot::take(dev);
  dev.write_block(3, payload(4096, 1));                 // zero -> data
  dev.write_block(5, payload(4096, 2));
  const auto d1 = Snapshot::take(dev);
  dev.write_block(5, payload(4096, 3));                 // data -> data
  dev.write_block(3, util::Bytes(4096, 0));             // data -> zero
  const auto d2 = Snapshot::take(dev);

  const auto diff01 = adversary::diff_snapshots(d0, d1);
  EXPECT_EQ(diff01.total_changed(), 2u);
  EXPECT_EQ(diff01.zero_to_data, 2u);
  const auto diff12 = adversary::diff_snapshots(d1, d2);
  EXPECT_EQ(diff12.data_to_data, 1u);
  EXPECT_EQ(diff12.data_to_zero, 1u);
  EXPECT_TRUE(adversary::diff_snapshots(d0, d0).changed_blocks.empty());
}

TEST(SnapshotDiff, ChunkGranularity) {
  blockdev::MemBlockDevice dev(64);
  const auto d0 = Snapshot::take(dev);
  dev.write_block(0, payload(4096, 1));
  dev.write_block(1, payload(4096, 1));
  dev.write_block(17, payload(4096, 1));
  const auto d1 = Snapshot::take(dev);
  const auto chunks =
      adversary::changed_chunks(adversary::diff_snapshots(d0, d1), 4);
  EXPECT_EQ(chunks, (std::vector<std::uint64_t>{0, 4}));
}

TEST(MetadataReader, ParsesMobiCealPoolFromRawSnapshot) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = core::MobiCealDevice::initialize(disk, mc_config(), kPub, {kHid});
  dev->boot(kPub);
  dev->data_fs().write_file("/a.bin", payload(100000, 1));
  dev->reboot();

  const auto snap = Snapshot::take(*disk);
  adversary::ThinMetadataReader reader(snap);
  EXPECT_EQ(reader.policy(), thin::AllocPolicy::kRandom);
  EXPECT_EQ(reader.superblock().max_volumes, 6u);
  // All six volumes visible (their existence is NOT secret).
  int active = 0;
  for (const auto& v : reader.volumes()) active += v.active ? 1 : 0;
  EXPECT_EQ(active, 6);
  // The reader's view matches the live pool's accounting.
  EXPECT_EQ(reader.chunks_of_volume(0).size(), dev->pool().mapped_chunks(0));
  EXPECT_TRUE(reader.orphan_chunks().empty());
}

TEST(MetadataReader, RejectsGarbageImages) {
  blockdev::MemBlockDevice dev(64);
  const auto snap = Snapshot::take(dev);
  EXPECT_THROW(adversary::ThinMetadataReader r(snap), util::MetadataError);
}

TEST(Attacks, RandomnessChangeDefeatsStaticSchemes) {
  // Model of the Mobiflage/MobiPluto failure: random-filled free space
  // changes between snapshots with no public explanation.
  blockdev::MemBlockDevice dev(256);
  crypto::SecureRandom rng(1);
  util::Bytes noise(4096);
  for (std::uint64_t b = 0; b < 256; ++b) {
    rng.fill_bytes(noise);
    dev.write_block(b, noise);
  }
  const auto d0 = Snapshot::take(dev);
  // Public activity on blocks 0..9 (accounted); hidden write at block 200.
  std::vector<std::uint64_t> accounted;
  for (std::uint64_t b = 0; b < 10; ++b) {
    rng.fill_bytes(noise);
    dev.write_block(b, noise);
    accounted.push_back(b);
  }
  rng.fill_bytes(noise);
  dev.write_block(200, noise);  // the hidden write
  const auto d1 = Snapshot::take(dev);

  const auto rep = adversary::randomness_change_attack(d0, d1, accounted);
  EXPECT_TRUE(rep.suspects_hidden_data);
  EXPECT_EQ(rep.statistic, 1.0);

  // Without the hidden write there is nothing to see.
  const auto clean = adversary::randomness_change_attack(d1, d1, accounted);
  EXPECT_FALSE(clean.suspects_hidden_data);
}

TEST(Attacks, NonpublicGrowthDefeatsMobiPluto) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.chunk_blocks = 4;
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, kPub, kHid);

  dev->boot(kPub);
  dev->data_fs().write_file("/cover", payload(50000, 1));
  dev->reboot();
  const auto d0 = Snapshot::take(*disk);

  // Hidden session between two border crossings.
  dev->boot(kHid);
  dev->data_fs().write_file("/secret", payload(50000, 2));
  dev->reboot();
  dev->boot(kPub);
  dev->data_fs().write_file("/cover2", payload(50000, 3));
  dev->reboot();
  const auto d1 = Snapshot::take(*disk);

  adversary::ThinMetadataReader r0(d0), r1(d1);
  const auto rep = adversary::nonpublic_growth_attack(r0, r1);
  EXPECT_TRUE(rep.suspects_hidden_data);  // MobiPluto is busted

  // MobiCeal under the same attack survives: non-public growth exists but
  // is claimed as dummy traffic; the budget attack is the right tool and
  // it does not fire (tested in Attacks.DummyBudgetSparesMobiCeal).
}

TEST(Attacks, DummyBudgetSparesMobiCeal) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto dev = core::MobiCealDevice::initialize(disk, mc_config(11), kPub,
                                              {kHid});
  dev->boot(kPub);
  dev->data_fs().write_file("/base", payload(80000, 1));
  dev->reboot();
  const auto d0 = Snapshot::take(*disk);

  dev->boot(kPub);
  for (int i = 0; i < 10; ++i) {
    dev->data_fs().write_file("/p" + std::to_string(i), payload(60000, i));
  }
  // Hidden session, small file, with the equal-size discipline.
  ASSERT_TRUE(dev->switch_to_hidden(kHid));
  dev->data_fs().write_file("/secret", payload(48 * 1024, 9));
  dev->reboot();
  dev->boot(kPub);
  dev->data_fs().write_file("/cover", payload(48 * 1024, 10));
  dev->reboot();
  const auto d1 = Snapshot::take(*disk);

  adversary::ThinMetadataReader r0(d0), r1(d1);
  const auto rep = adversary::dummy_budget_attack(r0, r1, /*lambda=*/1.0);
  EXPECT_FALSE(rep.suspects_hidden_data) << rep.reasoning;
}

TEST(Attacks, SequentialLayoutFlagsInterleaving) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.chunk_blocks = 4;
  cfg.fs_inode_count = 128;
  cfg.skip_random_fill = true;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, kPub, kHid);
  // Interleave public and hidden writes: sequential allocation wedges the
  // hidden chunks between public ones.
  dev->boot(kPub);
  dev->data_fs().write_file("/p1", payload(50000, 1));
  dev->reboot();
  dev->boot(kHid);
  dev->data_fs().write_file("/h1", payload(50000, 2));
  dev->reboot();
  dev->boot(kPub);
  dev->data_fs().write_file("/p2", payload(50000, 3));
  dev->reboot();

  adversary::ThinMetadataReader meta(Snapshot::take(*disk));
  const auto rep = adversary::sequential_layout_attack(meta);
  EXPECT_TRUE(rep.suspects_hidden_data);
  EXPECT_GT(rep.statistic, 0.0);
}

TEST(SecurityGame, SmallGameShowsTheContrast) {
  // Scaled-down game (the full-size run lives in bench_security_game):
  // MobiPluto is perfectly distinguishable; MobiCeal resists the
  // paper-faithful budget adversary.
  adversary::GameConfig cfg;
  cfg.trials = 10;
  cfg.rounds = 2;
  cfg.public_files_per_round = 6;
  cfg.seed = 7;

  cfg.scheme = "mobipluto";
  const auto pluto = adversary::run_security_game(cfg);
  // "any growth" wins every trial against MobiPluto.
  EXPECT_NEAR(pluto.distinguishers[0].advantage(), 0.5, 1e-9);

  cfg.scheme = "mobiceal";
  const auto mc = adversary::run_security_game(cfg);
  // The budget adversary gains (almost) nothing on MobiCeal.
  EXPECT_LE(mc.distinguishers[1].advantage(), 0.25);
  // And "any growth" is useless (dummy writes fire in both worlds).
  EXPECT_LE(mc.distinguishers[0].advantage(), 0.3);
}

// ---- side channel -----------------------------------------------------------------------------

namespace {
std::unique_ptr<core::AndroidHost> make_host(bool isolate,
                                             std::uint64_t seed) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto clock = std::make_shared<util::SimClock>();
  auto dev = core::MobiCealDevice::initialize(disk, mc_config(seed), kPub,
                                              {kHid}, clock);
  core::AndroidHost::Options opt;
  opt.isolate_side_channels = isolate;
  opt.screen_lock_password = "0000";
  return std::make_unique<core::AndroidHost>(std::move(dev), clock, opt);
}
}  // namespace

TEST(SideChannel, MobiCealIsolationPreventsLeaks) {
  auto host = make_host(/*isolate=*/true, 21);
  host->power_on();
  ASSERT_EQ(host->enter_boot_password(kPub), core::AuthResult::kPublic);
  host->app_write_file("/holiday.jpg", payload(10000, 1));
  host->lock_screen();
  ASSERT_EQ(host->enter_lock_screen_password(kHid),
            core::AndroidHost::LockResult::kSwitchedToHidden);
  host->app_write_file("/protest_footage.mp4", payload(30000, 2));
  host->app_read_file("/protest_footage.mp4");
  host->reboot();

  const auto report = adversary::audit_side_channels(*host);
  EXPECT_FALSE(report.leaked());
  // tmpfs records died at reboot too.
  EXPECT_TRUE(host->tmpfs_records().empty());
  // The public activity is still there (nothing suspicious about that).
  EXPECT_FALSE(host->devlog_persistent().empty());
}

TEST(SideChannel, SharedOsDesignLeaks) {
  // HIVE/DEFY-style: no isolation step; hidden activity lands in
  // persistent logs — the Czeskis et al. attack succeeds.
  auto host = make_host(/*isolate=*/false, 22);
  host->power_on();
  ASSERT_EQ(host->enter_boot_password(kPub), core::AuthResult::kPublic);
  host->lock_screen();
  ASSERT_EQ(host->enter_lock_screen_password(kHid),
            core::AndroidHost::LockResult::kSwitchedToHidden);
  host->app_write_file("/protest_footage.mp4", payload(30000, 2));
  host->reboot();

  const auto report = adversary::audit_side_channels(*host);
  EXPECT_TRUE(report.leaked());
  EXPECT_EQ(report.devlog_leaks.size(), 1u);
  EXPECT_EQ(report.devlog_leaks[0], "/protest_footage.mp4");
}

TEST(SideChannel, WrongLockPasswordRejectedAndStaysPublic) {
  auto host = make_host(true, 23);
  host->power_on();
  ASSERT_EQ(host->enter_boot_password(kPub), core::AuthResult::kPublic);
  host->lock_screen();
  EXPECT_EQ(host->enter_lock_screen_password("garbage"),
            core::AndroidHost::LockResult::kRejected);
  EXPECT_EQ(host->device_mode(), core::Mode::kPublic);
  EXPECT_EQ(host->enter_lock_screen_password("0000"),
            core::AndroidHost::LockResult::kUnlocked);
}

TEST(SideChannel, FastSwitchIsUnder10SecondsOfVirtualTime) {
  // The headline usability number (Table II: 9.27 s vs >60 s reboot).
  auto host = make_host(true, 24);
  host->power_on();
  ASSERT_EQ(host->enter_boot_password(kPub), core::AuthResult::kPublic);
  host->lock_screen();
  const double t0 = host->clock().now_seconds();
  ASSERT_EQ(host->enter_lock_screen_password(kHid),
            core::AndroidHost::LockResult::kSwitchedToHidden);
  const double switch_s = host->clock().now_seconds() - t0;
  EXPECT_LT(switch_s, 10.0);
  EXPECT_GT(switch_s, 5.0);

  const double t1 = host->clock().now_seconds();
  host->reboot();
  ASSERT_EQ(host->enter_boot_password(kPub), core::AuthResult::kPublic);
  const double reboot_s = host->clock().now_seconds() - t1;
  EXPECT_GT(reboot_s, 40.0);  // exit requires the full reboot
}
