// Runtime behaviour of the annotated sync primitives (util/sync.hpp).
//
// The *static* half of the contract — that clang's -Wthread-safety rejects
// unguarded access to GUARDED_BY fields and unlocked calls to REQUIRES
// functions — is proven by the negative-compile fixtures in
// tests/negative_compile/ (registered as WILL_FAIL ctest entries when the
// compiler is clang). This file proves the primitives also *work*: the
// annotations must never change behaviour, only reject bad callers.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mobiceal {
namespace {

TEST(Sync, MutexProvidesMutualExclusion) {
  util::Mutex mu;
  std::int64_t counter GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        util::MutexLock lock(mu);
        ++counter;  // unguarded increments would lose updates
      }
    });
  }
  for (auto& th : threads) th.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(Sync, TryLockReflectsOwnership) {
  util::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> other_got_it{true};
  // Contend from a second thread: the lock is held, try_lock must fail.
  std::thread probe([&] { other_got_it = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(other_got_it.load());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, CondVarWakesExplicitPredicateLoop) {
  // The project-wide wait idiom (sync.hpp header comment): hold the Mutex,
  // loop on the predicate, cv.wait(mu) inside the loop. TSA cannot see
  // into lambda predicates, so this explicit shape is the only one used.
  util::Mutex mu;
  util::CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  std::int64_t observed = -1;

  std::thread waiter([&] {
    util::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 42;
  });

  {
    util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(Sync, CondVarNotifyAllReleasesEveryWaiter) {
  util::Mutex mu;
  util::CondVar cv;
  bool go GUARDED_BY(mu) = false;
  std::atomic<int> released{0};
  constexpr int kWaiters = 6;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      util::MutexLock lock(mu);
      while (!go) cv.wait(mu);
      released.fetch_add(1);
    });
  }
  {
    util::MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& th : threads) th.join();
  EXPECT_EQ(released.load(), kWaiters);
}

TEST(Sync, MutexLockReleasesOnScopeExit) {
  util::Mutex mu;
  { util::MutexLock lock(mu); }
  // If the destructor failed to release, this try_lock would fail.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, AnnotationsAreNoOpsWhereUnsupported) {
  // The macro set must collapse cleanly: this TU compiles under gcc (no
  // -Wthread-safety) and clang alike, and GUARDED_BY on a local is legal
  // syntax in both. Nothing to assert beyond successful compilation and
  // that annotated code runs.
  util::Mutex mu;
  int x GUARDED_BY(mu) = 0;
  {
    util::MutexLock lock(mu);
    x = 1;
  }
  util::MutexLock lock(mu);
  EXPECT_EQ(x, 1);
}

}  // namespace
}  // namespace mobiceal
