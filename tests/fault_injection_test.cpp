// blockdev::FaultInjector / FaultInjectedDevice — the programmable fault
// policy the degraded-operation stack is built against: transient read
// errors, latent bad sectors, whole-member drop, power-cut-at-Nth-flush —
// on EVERY entry point (single-block, vectored, async submit). Plus the
// satellite regression for the rewritten fault_device.hpp wrappers: the
// recording and budget devices must intercept the vectored and submit
// paths too (one vectored inner command, budgets spent per block), and
// StripedTarget::flush must fail closed while still reaching every member.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "blockdev/block_device.hpp"
#include "blockdev/fault_device.hpp"
#include "blockdev/fault_injector.hpp"
#include "blockdev/timed_device.hpp"
#include "dm/striped_target.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/sim_clock.hpp"

namespace mobiceal {
namespace {

using blockdev::FaultInjectedDevice;
using blockdev::FaultInjector;
using blockdev::FaultPlan;
using blockdev::IoOp;
using blockdev::IoRequest;
using blockdev::MemBlockDevice;
using blockdev::MemberDead;
using blockdev::PowerCut;
using blockdev::ReadFault;

util::Bytes pattern(std::size_t n, std::uint8_t salt) {
  util::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(salt + i * 7 + (i >> 8) * 131);
  }
  return data;
}

/// Wraps a MemBlockDevice and counts how many times each *hook* fires, so
/// the tests can prove a vectored call stayed one vectored command on the
/// inner device instead of decaying into a per-block loop.
class CountingDevice final : public blockdev::BlockDevice {
 public:
  explicit CountingDevice(std::shared_ptr<blockdev::BlockDevice> inner)
      : inner_(std::move(inner)) {}

  std::size_t block_size() const noexcept override {
    return inner_->block_size();
  }
  std::uint64_t num_blocks() const noexcept override {
    return inner_->num_blocks();
  }
  void read_block(std::uint64_t index, util::MutByteSpan out) override {
    ++single_reads;
    inner_->read_block(index, out);
  }
  void write_block(std::uint64_t index, util::ByteSpan data) override {
    ++single_writes;
    inner_->write_block(index, data);
  }
  void flush() override {
    ++flushes;
    inner_->flush();
  }

  int single_reads = 0;
  int single_writes = 0;
  int vectored_reads = 0;
  int vectored_writes = 0;
  int submits = 0;
  int flushes = 0;

 protected:
  void do_read_blocks(std::uint64_t first, std::uint64_t count,
                      util::MutByteSpan out) override {
    ++vectored_reads;
    inner_->read_blocks(first, count, out);
  }
  void do_write_blocks(std::uint64_t first, util::ByteSpan data) override {
    ++vectored_writes;
    inner_->write_blocks(first, data);
  }
  std::uint64_t do_submit(const IoRequest& req) override {
    ++submits;
    return inner_->submit(req).complete_ns;
  }

 private:
  std::shared_ptr<blockdev::BlockDevice> inner_;
};

struct InjectedRig {
  std::shared_ptr<MemBlockDevice> mem;
  std::shared_ptr<FaultInjector> injector;
  std::shared_ptr<FaultInjectedDevice> dev;

  explicit InjectedRig(FaultPlan plan, std::uint64_t blocks = 64) {
    mem = std::make_shared<MemBlockDevice>(blocks);
    injector = std::make_shared<FaultInjector>(plan);
    dev = std::make_shared<FaultInjectedDevice>(mem, injector);
  }
};

// ---- FaultInjector policies -------------------------------------------------

TEST(FaultInjectorTest, TransientFaultsAreSeededAndDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.transient_read_ppm = 200000;  // 20%: plenty of faults in 500 draws
  InjectedRig a(plan);
  InjectedRig b(plan);

  util::Bytes buf(a.dev->block_size());
  std::vector<int> faults_a;
  std::vector<int> faults_b;
  for (int i = 0; i < 500; ++i) {
    try {
      a.dev->read_block(static_cast<std::uint64_t>(i % 64), buf);
    } catch (const ReadFault&) {
      faults_a.push_back(i);
    }
    try {
      b.dev->read_block(static_cast<std::uint64_t>(i % 64), buf);
    } catch (const ReadFault&) {
      faults_b.push_back(i);
    }
  }
  // Same plan, same seed: bit-for-bit the same fault schedule.
  EXPECT_EQ(faults_a, faults_b);
  EXPECT_FALSE(faults_a.empty());
  EXPECT_EQ(a.injector->transient_faults(), faults_a.size());

  // A different seed draws a different schedule.
  plan.seed = 43;
  InjectedRig c(plan);
  std::vector<int> faults_c;
  for (int i = 0; i < 500; ++i) {
    try {
      c.dev->read_block(static_cast<std::uint64_t>(i % 64), buf);
    } catch (const ReadFault&) {
      faults_c.push_back(i);
    }
  }
  EXPECT_NE(faults_a, faults_c);
}

TEST(FaultInjectorTest, LatentBadBlockFailsUntilRewritten) {
  FaultPlan plan;
  plan.latent_bad_blocks = {5, 9};
  InjectedRig rig(plan);
  const auto data = pattern(rig.dev->block_size(), 1);
  util::Bytes buf(rig.dev->block_size());

  EXPECT_EQ(rig.injector->latent_bad_count(), 2u);
  // Every read touching the sector fails, single-block or vectored.
  EXPECT_THROW(rig.dev->read_block(5, buf), ReadFault);
  EXPECT_THROW(rig.dev->read_block(5, buf), ReadFault);  // persistent
  util::Bytes big(4 * rig.dev->block_size());
  EXPECT_THROW(rig.dev->read_blocks(4, 4, big), ReadFault);
  // Reads that miss the bad sectors are clean.
  EXPECT_NO_THROW(rig.dev->read_block(6, buf));
  EXPECT_EQ(rig.injector->latent_faults(), 3u);

  // A rewrite clears the pending sector (scrub / mirror repair-on-read).
  rig.dev->write_block(5, data);
  EXPECT_EQ(rig.injector->healed_blocks(), 1u);
  EXPECT_EQ(rig.injector->latent_bad_count(), 1u);
  EXPECT_NO_THROW(rig.dev->read_block(5, buf));
  EXPECT_EQ(buf, data);

  // A vectored rewrite heals every covered sector.
  rig.dev->write_blocks(8, pattern(2 * rig.dev->block_size(), 2));
  EXPECT_EQ(rig.injector->healed_blocks(), 2u);
  EXPECT_EQ(rig.injector->latent_bad_count(), 0u);
  EXPECT_NO_THROW(rig.dev->read_blocks(4, 4, big));
}

TEST(FaultInjectorTest, MemberDropsAfterNRequests) {
  FaultPlan plan;
  plan.drop_after_requests = 3;
  InjectedRig rig(plan);
  const auto data = pattern(rig.dev->block_size(), 3);
  util::Bytes buf(rig.dev->block_size());

  rig.dev->write_block(0, data);        // request 1
  rig.dev->read_block(0, buf);          // request 2
  rig.dev->read_blocks(0, 1, buf);      // request 3 (vectored counts once)
  EXPECT_FALSE(rig.injector->dead());
  EXPECT_THROW(rig.dev->read_block(0, buf), MemberDead);  // request 4
  EXPECT_TRUE(rig.injector->dead());
  // Dead is dead, on every path.
  EXPECT_THROW(rig.dev->write_block(1, data), MemberDead);
  EXPECT_THROW(rig.dev->flush(), MemberDead);

  // drop_after_requests = 0: dead on arrival.
  FaultPlan doa;
  doa.drop_after_requests = 0;
  InjectedRig gone(doa);
  EXPECT_THROW(gone.dev->read_block(0, buf), MemberDead);

  // drop_now(): bench/test control plane, no request needed.
  InjectedRig healthy(FaultPlan{});
  healthy.injector->drop_now();
  EXPECT_TRUE(healthy.injector->dead());
  EXPECT_THROW(healthy.dev->write_block(0, data), MemberDead);
}

TEST(FaultInjectorTest, PowerCutAtNthFlushIsFatalButEarlierWritesPersist) {
  FaultPlan plan;
  plan.power_cut_at_flush = 2;
  InjectedRig rig(plan);
  const auto d0 = pattern(rig.dev->block_size(), 4);
  const auto d1 = pattern(rig.dev->block_size(), 5);

  rig.dev->write_block(0, d0);
  EXPECT_NO_THROW(rig.dev->flush());  // first barrier completes
  rig.dev->write_block(1, d1);
  EXPECT_THROW(rig.dev->flush(), PowerCut);  // second barrier: lights out
  EXPECT_TRUE(rig.injector->dead());
  // The cut fires exactly once; afterwards the member is simply dead.
  EXPECT_THROW(rig.dev->flush(), MemberDead);
  util::Bytes buf(rig.dev->block_size());
  EXPECT_THROW(rig.dev->read_block(0, buf), MemberDead);

  // Writes issued before the cut reached the medium (data moves at submit
  // time — the simulation's "durable"): the raw image holds both blocks.
  rig.mem->read_block(0, buf);
  EXPECT_EQ(buf, d0);
  rig.mem->read_block(1, buf);
  EXPECT_EQ(buf, d1);
}

TEST(FaultInjectorTest, FaultsCoverTheAsyncSubmitPath) {
  FaultPlan plan;
  plan.latent_bad_blocks = {2};
  plan.power_cut_at_flush = 1;
  InjectedRig rig(plan);
  util::Bytes buf(2 * rig.dev->block_size());
  const auto data = pattern(2 * rig.dev->block_size(), 6);

  IoRequest read;
  read.op = IoOp::kRead;
  read.first = 1;
  read.count = 2;
  read.read_buf = buf;
  EXPECT_THROW(rig.dev->submit(read), ReadFault);

  // A submitted write heals the sector like the synchronous path.
  IoRequest write;
  write.op = IoOp::kWrite;
  write.first = 1;
  write.count = 2;
  write.write_buf = data;
  EXPECT_NO_THROW(rig.dev->submit(write));
  EXPECT_EQ(rig.injector->healed_blocks(), 1u);
  EXPECT_NO_THROW(rig.dev->submit(read));
  EXPECT_EQ(buf, data);

  IoRequest barrier;
  barrier.op = IoOp::kFlush;
  EXPECT_THROW(rig.dev->submit(barrier), PowerCut);
  EXPECT_THROW(rig.dev->submit(write), MemberDead);
}

TEST(FaultInjectorTest, DefaultPlanIsByteAndTimeTransparent) {
  // Wiring an injector with a default (fault-free) plan must be invisible:
  // identical bytes AND identical virtual time against the bare device.
  const auto model = blockdev::TimingModel::nexus4_emmc();
  auto clock_bare = std::make_shared<util::SimClock>();
  auto clock_inj = std::make_shared<util::SimClock>();
  auto mem_bare = std::make_shared<MemBlockDevice>(256);
  auto mem_inj = std::make_shared<MemBlockDevice>(256);
  auto timed_bare =
      std::make_shared<blockdev::TimedDevice>(mem_bare, model, clock_bare);
  auto timed_inj =
      std::make_shared<blockdev::TimedDevice>(mem_inj, model, clock_inj);
  auto injected = std::make_shared<FaultInjectedDevice>(
      timed_inj, std::make_shared<FaultInjector>(FaultPlan{}));

  auto workload = [](blockdev::BlockDevice& dev) {
    const auto big = pattern(8 * dev.block_size(), 7);
    dev.write_blocks(16, big);
    dev.write_block(3, pattern(dev.block_size(), 8));
    util::Bytes buf(8 * dev.block_size());
    dev.read_blocks(16, 8, buf);
    IoRequest w;
    w.op = IoOp::kWrite;
    w.first = 64;
    w.count = 8;
    w.write_buf = big;
    dev.submit(w);
    IoRequest r;
    r.op = IoOp::kRead;
    r.first = 64;
    r.count = 8;
    r.read_buf = buf;
    r.available_ns = dev.submit(r).complete_ns;  // chained second read
    dev.submit(r);
    dev.flush();
    dev.drain();
  };
  workload(*timed_bare);
  workload(*injected);

  EXPECT_EQ(mem_bare->snapshot(), mem_inj->snapshot());
  EXPECT_EQ(clock_bare->now(), clock_inj->now());
}

// ---- fault_device.hpp wrappers: every entry point intercepted ---------------

TEST(FaultInjectorTest, RecordingDeviceCapturesVectoredAndSubmitPaths) {
  auto counting =
      std::make_shared<CountingDevice>(std::make_shared<MemBlockDevice>(32));
  blockdev::RecordingDevice rec(counting);

  // One vectored write: recorded per block (the order invariants are
  // block-granular) yet forwarded as ONE vectored inner command.
  rec.write_blocks(4, pattern(3 * rec.block_size(), 1));
  ASSERT_EQ(rec.ops().size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.ops()[i].kind, blockdev::DeviceOp::Kind::kWrite);
    EXPECT_EQ(rec.ops()[i].block, 4 + i);
  }
  EXPECT_EQ(counting->vectored_writes, 1);
  EXPECT_EQ(counting->single_writes, 0);

  util::Bytes buf(2 * rec.block_size());
  rec.read_blocks(4, 2, buf);
  EXPECT_EQ(counting->vectored_reads, 1);
  EXPECT_EQ(counting->single_reads, 0);

  // The async path: submissions are recorded and reach inner submit().
  rec.clear();
  IoRequest w;
  w.op = IoOp::kWrite;
  w.first = 10;
  w.count = 2;
  w.write_buf = pattern(2 * rec.block_size(), 2);
  rec.submit(w);
  IoRequest f;
  f.op = IoOp::kFlush;
  rec.submit(f);
  ASSERT_EQ(rec.ops().size(), 3u);
  EXPECT_EQ(rec.ops()[0].block, 10u);
  EXPECT_EQ(rec.ops()[1].block, 11u);
  EXPECT_EQ(rec.ops()[2].kind, blockdev::DeviceOp::Kind::kFlush);
  EXPECT_EQ(counting->submits, 2);
}

TEST(FaultInjectorTest, FaultyDeviceBudgetSpansVectoredWrites) {
  auto mem = std::make_shared<MemBlockDevice>(32);
  blockdev::FaultyDevice faulty(mem, 2);
  const auto data = pattern(4 * faulty.block_size(), 3);

  // 4-block write against a 2-block budget: the surviving prefix lands
  // (the kernel may complete part of a vectored request), then the fault.
  EXPECT_THROW(faulty.write_blocks(0, data), blockdev::InjectedFault);
  util::Bytes prefix(2 * faulty.block_size());
  mem->read_blocks(0, 2, prefix);
  EXPECT_EQ(prefix, util::Bytes(data.begin(),
                                data.begin() + 2 * faulty.block_size()));
  util::Bytes tail(faulty.block_size());
  mem->read_block(2, tail);
  EXPECT_EQ(tail, util::Bytes(faulty.block_size(), 0));  // never written

  // One crash per arming: the device is disarmed afterwards.
  EXPECT_LT(faulty.budget(), 0);
  EXPECT_NO_THROW(faulty.write_blocks(8, data));
}

TEST(FaultInjectorTest, FaultyDeviceBudgetSpansSubmittedWrites) {
  auto mem = std::make_shared<MemBlockDevice>(32);
  blockdev::FaultyDevice faulty(mem, 1);
  const auto data = pattern(3 * faulty.block_size(), 4);

  IoRequest w;
  w.op = IoOp::kWrite;
  w.first = 5;
  w.count = 3;
  w.write_buf = data;
  EXPECT_THROW(faulty.submit(w), blockdev::InjectedFault);
  util::Bytes got(faulty.block_size());
  mem->read_block(5, got);
  EXPECT_EQ(got, util::Bytes(data.begin(),
                             data.begin() + faulty.block_size()));
  mem->read_block(6, got);
  EXPECT_EQ(got, util::Bytes(faulty.block_size(), 0));
}

// ---- striped flush fails closed --------------------------------------------

TEST(FaultInjectorTest, StripedFlushFailsClosedYetReachesEveryMember) {
  // RAID-0: one member missing the barrier fails the whole flush — but
  // every other member must still be flushed and drained first, never a
  // partially issued barrier.
  FaultPlan cut;
  cut.power_cut_at_flush = 1;
  auto mem0 = std::make_shared<MemBlockDevice>(64);
  auto mem1 = std::make_shared<MemBlockDevice>(64);
  auto rec0 = std::make_shared<blockdev::RecordingDevice>(
      std::make_shared<FaultInjectedDevice>(
          mem0, std::make_shared<FaultInjector>(cut)));
  auto rec1 = std::make_shared<blockdev::RecordingDevice>(mem1);
  dm::StripedTarget striped({rec0, rec1}, /*chunk_blocks=*/4);

  striped.write_blocks(0, pattern(8 * striped.block_size(), 5));
  rec0->clear();
  rec1->clear();
  EXPECT_THROW(striped.flush(), PowerCut);

  auto flushes = [](const blockdev::RecordingDevice& rec) {
    int n = 0;
    for (const auto& op : rec.ops()) {
      if (op.kind == blockdev::DeviceOp::Kind::kFlush) ++n;
    }
    return n;
  };
  // The failing member was attempted AND the healthy member still got its
  // barrier before the error surfaced.
  EXPECT_EQ(flushes(*rec0), 1);
  EXPECT_EQ(flushes(*rec1), 1);
}

}  // namespace
}  // namespace mobiceal
