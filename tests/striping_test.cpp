// dm::StripedTarget — RAID-0 geometry, per-stripe sub-run splitting, the
// one-stripe byte/time-identity contract, virtual-timeline overlap across
// backing devices, and the deniability-parity proof: for every registered
// scheme the striped stack's logical image (reassembled from the backing
// devices by pure geometry) is bit-identical to the single-device stack —
// hidden-mode and dummy-write workloads included. A multi-snapshot
// adversary imaging each backing device therefore learns nothing from the
// layout that the single-device image would not already reveal.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/timed_device.hpp"
#include "dm/crypt_target.hpp"
#include "dm/striped_target.hpp"
#include "util/error.hpp"
#include "util/sim_clock.hpp"

namespace mobiceal {
namespace {

using blockdev::kDefaultBlockSize;

util::Bytes pattern(std::size_t n, std::uint8_t salt) {
  util::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(salt + i * 7 + (i >> 8) * 131);
  }
  return data;
}

struct StripedRig {
  std::vector<std::shared_ptr<blockdev::MemBlockDevice>> mems;
  std::vector<std::shared_ptr<blockdev::BlockDevice>> devs;
  std::shared_ptr<dm::StripedTarget> target;
};

StripedRig make_mem_rig(std::uint32_t stripes, std::uint64_t per_blocks,
                        std::uint32_t chunk) {
  StripedRig r;
  for (std::uint32_t i = 0; i < stripes; ++i) {
    r.mems.push_back(std::make_shared<blockdev::MemBlockDevice>(per_blocks));
    r.devs.push_back(r.mems.back());
  }
  r.target = std::make_shared<dm::StripedTarget>(r.devs, chunk);
  return r;
}

// ---- geometry ---------------------------------------------------------------

TEST(StripedTarget, GeometryMapsChunksRoundRobin) {
  const StripedRig r = make_mem_rig(4, 32, 4);  // 4 stripes, chunk = 4
  EXPECT_EQ(r.target->num_blocks(), 128u);
  EXPECT_EQ(r.target->stripe_count(), 4u);
  for (std::uint64_t b = 0; b < r.target->num_blocks(); ++b) {
    const auto p = r.target->place(b);
    const std::uint64_t chunk = b / 4;
    EXPECT_EQ(p.stripe, chunk % 4);
    EXPECT_EQ(p.inner, (chunk / 4) * 4 + b % 4);
  }
}

TEST(StripedTarget, OneStripePlacementIsIdentity) {
  const StripedRig r = make_mem_rig(1, 64, 16);
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto p = r.target->place(b);
    EXPECT_EQ(p.stripe, 0u);
    EXPECT_EQ(p.inner, b);
  }
}

TEST(StripedTarget, RejectsBadGeometry) {
  std::vector<std::shared_ptr<blockdev::BlockDevice>> none;
  EXPECT_THROW(dm::StripedTarget(none, 16), util::PolicyError);

  auto a = std::make_shared<blockdev::MemBlockDevice>(32);
  auto b = std::make_shared<blockdev::MemBlockDevice>(48);  // differing size
  EXPECT_THROW(dm::StripedTarget({a, b}, 16), util::PolicyError);

  auto c = std::make_shared<blockdev::MemBlockDevice>(32, 512);
  EXPECT_THROW(dm::StripedTarget({a, c}, 16), util::PolicyError);  // bs

  EXPECT_THROW(dm::StripedTarget({a, a}, 0), util::PolicyError);  // chunk 0
  // 32 blocks is not a whole number of 24-block chunks.
  EXPECT_THROW(dm::StripedTarget({a, a}, 24), util::PolicyError);
  EXPECT_THROW(dm::StripedTarget({a, nullptr}, 16), util::PolicyError);
}

// ---- data paths -------------------------------------------------------------

TEST(StripedTarget, VectoredRoundTripCrossesStripeBoundaries) {
  const StripedRig r = make_mem_rig(4, 64, 4);
  // Unaligned range crossing many chunk rows: blocks [3, 3 + 53).
  const util::Bytes payload = pattern(53 * kDefaultBlockSize, 11);
  r.target->write_blocks(3, payload);

  util::Bytes back(payload.size());
  r.target->read_blocks(3, 53, back);
  EXPECT_EQ(back, payload);

  // Per-block reads agree, and each block sits on its placed backing dev.
  util::Bytes blk(kDefaultBlockSize), inner(kDefaultBlockSize);
  for (std::uint64_t b = 3; b < 56; ++b) {
    r.target->read_block(b, blk);
    EXPECT_EQ(0, std::memcmp(blk.data(),
                             payload.data() + (b - 3) * kDefaultBlockSize,
                             kDefaultBlockSize));
    const auto p = r.target->place(b);
    r.mems[p.stripe]->read_block(p.inner, inner);
    EXPECT_EQ(inner, blk) << "block " << b;
  }
}

TEST(StripedTarget, LogicalImageReassemblesFromBackingImages) {
  const StripedRig r = make_mem_rig(4, 16, 4);
  const util::Bytes payload = pattern(64 * kDefaultBlockSize, 3);
  r.target->write_blocks(0, payload);

  // Reassemble by pure geometry from the four backing snapshots — the
  // multi-snapshot adversary's view.
  std::vector<util::Bytes> images;
  for (const auto& m : r.mems) images.push_back(m->snapshot());
  util::Bytes logical(64 * kDefaultBlockSize);
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto p = r.target->place(b);
    std::copy_n(images[p.stripe].data() + p.inner * kDefaultBlockSize,
                kDefaultBlockSize, logical.data() + b * kDefaultBlockSize);
  }
  EXPECT_EQ(logical, payload);
  EXPECT_EQ(r.target->snapshot(), payload);
}

TEST(StripedTarget, SplitsRequestsIntoOneSubRunPerStripe) {
  const StripedRig r = make_mem_rig(4, 64, 4);
  const util::Bytes row = pattern(16 * kDefaultBlockSize, 1);

  // One full chunk row: 4 chunks -> 4 sub-requests, 1 boundary crossing.
  r.target->write_blocks(0, row);
  EXPECT_EQ(r.target->sub_requests(), 4u);
  EXPECT_EQ(r.target->split_requests(), 1u);

  // Within one chunk: a single forwarded sub-request, no split.
  r.target->write_blocks(17, {row.data(), 2 * kDefaultBlockSize});
  EXPECT_EQ(r.target->sub_requests(), 5u);
  EXPECT_EQ(r.target->split_requests(), 1u);

  // Submitted requests fan out the same way.
  blockdev::IoRequest req;
  req.op = blockdev::IoOp::kWrite;
  req.first = 32;
  req.count = 16;
  req.write_buf = row;
  r.target->submit(req);
  r.target->drain();
  EXPECT_EQ(r.target->sub_requests(), 9u);
  EXPECT_EQ(r.target->split_requests(), 2u);
}

TEST(StripedTarget, EmptySubmitAnywhereInRangeIsFree) {
  // A zero-count request at a logical offset beyond one stripe's capacity
  // must not trip the (smaller) backing geometry's validation.
  const StripedRig r = make_mem_rig(4, 16, 4);  // logical 64, stripe 16
  blockdev::IoRequest req;
  req.op = blockdev::IoOp::kRead;
  req.first = 60;
  req.count = 0;
  EXPECT_NO_THROW(r.target->submit(req));
  req.op = blockdev::IoOp::kWrite;
  EXPECT_NO_THROW(r.target->submit(req));
  r.target->drain();
}

TEST(StripedTarget, SubmitPathMatchesSyncPathByteForByte) {
  const StripedRig sync_rig = make_mem_rig(4, 64, 4);
  const StripedRig async_rig = make_mem_rig(4, 64, 4);
  for (const auto& d : async_rig.devs) d->set_queue_depth(8);

  const util::Bytes a = pattern(24 * kDefaultBlockSize, 5);
  const util::Bytes b = pattern(40 * kDefaultBlockSize, 9);
  sync_rig.target->write_blocks(5, a);
  sync_rig.target->write_blocks(100, b);

  blockdev::IoRequest ra;
  ra.op = blockdev::IoOp::kWrite;
  ra.first = 5;
  ra.count = 24;
  ra.write_buf = a;
  async_rig.target->submit(ra);
  blockdev::IoRequest rb;
  rb.op = blockdev::IoOp::kWrite;
  rb.first = 100;
  rb.count = 40;
  rb.write_buf = b;
  async_rig.target->submit(rb);
  async_rig.target->drain();

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sync_rig.mems[i]->raw(), async_rig.mems[i]->raw())
        << "stripe " << i;
  }
}

// ---- service-time model -----------------------------------------------------

struct TimedRig {
  std::shared_ptr<util::SimClock> clock;
  std::vector<std::shared_ptr<blockdev::MemBlockDevice>> mems;
  std::vector<std::shared_ptr<blockdev::TimedDevice>> timed;
  std::shared_ptr<dm::StripedTarget> target;
};

TimedRig make_timed_rig(std::uint32_t stripes, std::uint64_t per_blocks,
                        std::uint32_t chunk, std::uint32_t qd) {
  TimedRig r;
  r.clock = std::make_shared<util::SimClock>();
  std::vector<std::shared_ptr<blockdev::BlockDevice>> devs;
  for (std::uint32_t i = 0; i < stripes; ++i) {
    r.mems.push_back(std::make_shared<blockdev::MemBlockDevice>(per_blocks));
    r.timed.push_back(std::make_shared<blockdev::TimedDevice>(
        r.mems.back(), blockdev::TimingModel::nexus4_emmc(), r.clock));
    r.timed.back()->set_queue_depth(qd);
    devs.push_back(r.timed.back());
  }
  r.target = std::make_shared<dm::StripedTarget>(devs, chunk);
  return r;
}

TEST(StripedTarget, OneStripeIsByteAndTimeIdenticalToBareDevice) {
  // The same op sequence against a bare TimedDevice and against a
  // 1-stripe StripedTarget over an identical device: every path must
  // forward verbatim — same virtual clock, same image, same counters.
  auto bare_clock = std::make_shared<util::SimClock>();
  auto bare_mem = std::make_shared<blockdev::MemBlockDevice>(256);
  auto bare = std::make_shared<blockdev::TimedDevice>(
      bare_mem, blockdev::TimingModel::nexus4_emmc(), bare_clock);
  const TimedRig striped = make_timed_rig(1, 256, 16, 1);

  auto drive = [](blockdev::BlockDevice& dev) {
    const util::Bytes one = pattern(kDefaultBlockSize, 1);
    const util::Bytes many = pattern(48 * kDefaultBlockSize, 2);
    dev.write_block(7, one);
    dev.write_blocks(16, many);
    util::Bytes back(many.size());
    dev.read_blocks(16, 48, back);
    util::Bytes blk(kDefaultBlockSize);
    dev.read_block(7, blk);
    blockdev::IoRequest req;
    req.op = blockdev::IoOp::kWrite;
    req.first = 128;
    req.count = 48;
    req.write_buf = many;
    dev.submit(req);
    req.op = blockdev::IoOp::kRead;
    req.read_buf = back;
    dev.submit(req);
    dev.drain();
    dev.flush();
  };
  drive(*bare);
  drive(*striped.target);

  EXPECT_EQ(bare_clock->now(), striped.clock->now());
  EXPECT_EQ(bare_mem->raw(), striped.mems[0]->raw());
  const auto& st = *striped.timed[0];
  EXPECT_EQ(bare->reads(), st.reads());
  EXPECT_EQ(bare->writes(), st.writes());
  EXPECT_EQ(bare->flushes(), st.flushes());
  EXPECT_EQ(bare->sequential_ios(), st.sequential_ios());
  EXPECT_EQ(bare->random_ios(), st.random_ios());
  EXPECT_EQ(bare->vectored_ios(), st.vectored_ios());
  EXPECT_EQ(bare->async_ios(), st.async_ios());
  EXPECT_EQ(striped.target->split_requests(), 0u);
  EXPECT_EQ(striped.target->sub_requests(), 0u);
}

TEST(StripedTarget, StripesOverlapOnTheVirtualTimeline) {
  // A 64-block sequential read: one device services 64 transfers back to
  // back; four stripes service 16 each on independent queues, so the
  // striped read must beat half the single-device time even at QD 1.
  TimedRig one = make_timed_rig(1, 256, 16, 1);
  TimedRig four = make_timed_rig(4, 64, 16, 1);
  util::Bytes buf(64 * kDefaultBlockSize);
  one.target->read_blocks(0, 64, buf);
  four.target->read_blocks(0, 64, buf);
  EXPECT_LT(four.clock->now(), one.clock->now() / 2)
      << "striped service did not overlap across backing devices";
}

TEST(StripedTarget, FlushFansOutInParallel) {
  TimedRig four = make_timed_rig(4, 64, 16, 1);
  const std::uint64_t t0 = four.clock->now();
  four.target->flush();
  // Parallel flush: max over members, not the sum.
  EXPECT_EQ(four.clock->now() - t0,
            blockdev::TimingModel::nexus4_emmc().flush_ns);
  for (const auto& t : four.timed) EXPECT_EQ(t->flushes(), 1u);
}

TEST(StripedTarget, SyncBarrierDrainsOnlyInvolvedStripes) {
  TimedRig four = make_timed_rig(4, 256, 16, 4);
  const util::Bytes chunk = pattern(16 * kDefaultBlockSize, 4);
  // Put a request in flight on stripe 2 (logical chunk 2 -> stripe 2).
  blockdev::IoRequest req;
  req.op = blockdev::IoOp::kWrite;
  req.first = 32;
  req.count = 16;
  req.write_buf = chunk;
  four.target->submit(req);
  // A sync read confined to stripe 0 must not wait for stripe 2's flight.
  util::Bytes back(16 * kDefaultBlockSize);
  four.target->read_blocks(0, 16, back);
  const std::uint64_t write_done =
      16 * blockdev::TimingModel::nexus4_emmc().write_per_block_ns;
  EXPECT_LT(four.clock->now(), write_done)
      << "sync read on stripe 0 stalled on stripe 2's in-flight write";
  four.target->drain();
  EXPECT_GE(four.clock->now(), write_done);
}

// ---- crypto lanes (per-CPU kcryptd; pairs with striping) --------------------

TEST(CryptoLanes, LaneCountNeverChangesCiphertextAndScalesThroughput) {
  const util::Bytes key = pattern(16, 77);
  auto run = [&](std::uint32_t lanes) {
    auto clock = std::make_shared<util::SimClock>();
    auto mem = std::make_shared<blockdev::MemBlockDevice>(512);
    auto timed = std::make_shared<blockdev::TimedDevice>(
        mem, blockdev::TimingModel::nexus4_emmc(), clock);
    timed->set_queue_depth(8);
    dm::CryptCpuModel cpu = dm::CryptCpuModel::snapdragon_s4();
    cpu.lanes = lanes;
    dm::CryptTarget crypt(timed, "aes-cbc-essiv:sha256", key, clock, cpu);

    const util::Bytes plain = pattern(256 * kDefaultBlockSize, 21);
    crypt.write_blocks(8, plain);
    util::Bytes back(plain.size());
    crypt.read_blocks(8, 256, back);
    EXPECT_EQ(back, plain);
    return std::pair{mem->snapshot(), clock->now()};
  };
  const auto [img1, ns1] = run(1);
  const auto [img4, ns4] = run(4);
  // Lanes are virtual service time only: ciphertext bit-identical.
  EXPECT_TRUE(img1 == img4);
  // And the cipher ceiling lifts once segments cipher concurrently.
  EXPECT_LT(ns4, ns1);
}

// ---- deniability parity across every registered scheme ----------------------

util::Bytes file_payload(std::size_t n, std::uint8_t salt) {
  util::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(salt + i * 7);
  }
  return data;
}

constexpr std::uint64_t kParityBlocks = 24576;  // 96 MiB at 4 KiB
constexpr std::uint32_t kParityChunk = 16;

/// Scheme options over a single untimed device (stripes == 1) or a
/// striped assembly of equal Mem devices, plus the logical view whose
/// snapshot() is the geometric reassembly an adversary would perform.
struct ParityRig {
  api::SchemeOptions opts;
  std::shared_ptr<blockdev::BlockDevice> logical;
};

ParityRig make_parity_rig(std::uint32_t stripes, std::uint32_t qd) {
  ParityRig r;
  if (stripes <= 1) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(kParityBlocks);
    disk->set_queue_depth(qd);
    r.opts.device = disk;
    r.logical = disk;
    return r;
  }
  std::vector<std::shared_ptr<blockdev::BlockDevice>> devs;
  for (std::uint32_t i = 0; i < stripes; ++i) {
    auto d =
        std::make_shared<blockdev::MemBlockDevice>(kParityBlocks / stripes);
    d->set_queue_depth(qd);
    devs.push_back(std::move(d));
  }
  r.opts.stack.stripe_count = stripes;
  r.opts.stack.stripe_chunk_blocks = kParityChunk;
  r.opts.stripe_devices = devs;
  r.logical = std::make_shared<dm::StripedTarget>(devs, kParityChunk);
  return r;
}

/// Runs the same fs workload against a freshly initialised scheme over
/// either a single device (stripes == 1) or a striped assembly, at the
/// given queue depth, and returns the final *logical* image after
/// reboot(). Striped images are reassembled by geometry, so equality with
/// the single-device image is exactly the multi-snapshot parity claim.
util::Bytes striped_final_image(const std::string& name,
                                std::uint32_t stripes, std::uint32_t qd) {
  auto [opts, logical] = make_parity_rig(stripes, qd);
  opts.public_password = "pub";
  if (api::SchemeRegistry::entry(name).capabilities.has(
          api::Capability::kHiddenVolume)) {
    opts.hidden_passwords = {"hid"};
  }
  opts.rng_seed = 99;
  opts.skip_random_fill = true;

  auto scheme = api::SchemeRegistry::create(name, opts);
  EXPECT_TRUE(scheme->unlock("pub").ok) << name;
  auto& fs = scheme->data_fs();
  fs.mkdir("/d");
  fs.write_file("/d/a.bin", file_payload(300 * 1024, 1));
  fs.write_file("/b.bin", file_payload(90 * 1024, 2));
  fs.write("/d/a.bin", 64 * 1024, file_payload(32 * 1024, 3));
  for (int i = 0; i < 8; ++i) {
    fs.write_file("/d/small" + std::to_string(i) + ".bin",
                  file_payload(4096, static_cast<std::uint8_t>(i)));
  }
  fs.unlink("/d/small3.bin");
  (void)fs.read_file("/d/a.bin");
  scheme->reboot();
  return logical->snapshot();
}

class StripingParity : public ::testing::TestWithParam<std::string> {};

TEST_P(StripingParity, StripedFinalImageBitIdenticalToSingleDevice) {
  const std::string scheme = GetParam();
  const util::Bytes single = striped_final_image(scheme, 1, 1);
  const util::Bytes striped_qd1 = striped_final_image(scheme, 4, 1);
  const util::Bytes striped_qd8 = striped_final_image(scheme, 4, 8);
  ASSERT_EQ(single.size(), striped_qd1.size());
  EXPECT_TRUE(single == striped_qd1)
      << scheme << ": striping perturbed the on-flash state at QD 1";
  EXPECT_TRUE(single == striped_qd8)
      << scheme << ": striping perturbed the on-flash state at QD 8";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, StripingParity,
    ::testing::ValuesIn(api::SchemeRegistry::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(StripingParity, MobiCealHiddenModeWithNoiseWritesStaysBitIdentical) {
  // Hidden-volume workload with dummy writes live (lambda low so bursts
  // definitely fire) plus garbage collection: the noise chunks and GC
  // discards ride the striped fan-out below the mount, and the logical
  // image must still match the single-device run bit for bit.
  auto run = [](std::uint32_t stripes) {
    auto [opts, logical] = make_parity_rig(stripes, /*qd=*/8);
    opts.public_password = "pub";
    opts.hidden_passwords = {"hid"};
    opts.rng_seed = 1234;
    opts.lambda = 0.25;  // bigger bursts

    auto scheme = api::SchemeRegistry::create("mobiceal", opts);
    EXPECT_TRUE(scheme->unlock("pub").ok);
    scheme->data_fs().write_file("/decoy.bin", file_payload(200 * 1024, 9));
    EXPECT_TRUE(scheme->switch_volume("hid"));
    scheme->data_fs().write_file("/secret.bin", file_payload(150 * 1024, 4));
    scheme->data_fs().write("/secret.bin", 8192, file_payload(8192, 5));
    (void)scheme->data_fs().read_file("/secret.bin");
    (void)scheme->collect_garbage(0.5);
    scheme->reboot();
    return logical->snapshot();
  };
  EXPECT_TRUE(run(1) == run(4));
}

struct ReplayRun {
  std::vector<util::Bytes> images;
  std::uint64_t ns = 0;
};

TEST(StripingParity, TimedStripedRunsReplayIdentically) {
  // Same striped stack, timed backing devices, run twice: per-stripe
  // images and total virtual time must replay exactly.
  auto run = [] {
    ReplayRun r;
    auto clock = std::make_shared<util::SimClock>();
    api::SchemeOptions opts;
    std::vector<std::shared_ptr<blockdev::MemBlockDevice>> mems;
    std::vector<std::shared_ptr<blockdev::BlockDevice>> devs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      mems.push_back(
          std::make_shared<blockdev::MemBlockDevice>(kParityBlocks / 4));
      auto t = std::make_shared<blockdev::TimedDevice>(
          mems.back(), blockdev::TimingModel::nexus4_emmc(), clock);
      t->set_queue_depth(8);
      devs.push_back(std::move(t));
    }
    opts.stack.stripe_count = 4;
    opts.stack.stripe_chunk_blocks = kParityChunk;
    opts.stripe_devices = devs;
    opts.clock = clock;
    opts.public_password = "pub";
    opts.hidden_passwords = {"hid"};
    opts.rng_seed = 7;
    auto scheme = api::SchemeRegistry::create("mobiceal", opts);
    EXPECT_TRUE(scheme->unlock("pub").ok);
    scheme->data_fs().write_file("/f.bin", file_payload(256 * 1024, 1));
    (void)scheme->data_fs().read_file("/f.bin");
    scheme->reboot();
    for (const auto& m : mems) r.images.push_back(m->snapshot());
    r.ns = clock->now();
    return r;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.ns, b.ns);
  ASSERT_EQ(a.images.size(), b.images.size());
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_TRUE(a.images[i] == b.images[i]) << "stripe " << i;
  }
}

}  // namespace
}  // namespace mobiceal
