// util::ClockDomain — sharded virtual time.
//
// The domain's contract is deterministic merging: shards advance
// independently between barriers, now() is the max over shards scanned in
// pinned shard-index order, sync() pins every shard to that max, and
// resetting ANY shard (benches reset shard 0 between repetitions) zeroes
// the whole domain with each shard's reset hooks firing exactly once.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "util/clock_domain.hpp"
#include "util/sim_clock.hpp"

namespace mobiceal {
namespace {

TEST(ClockDomainTest, SingleShardIsTheAnchorClock) {
  util::ClockDomain d(1);
  ASSERT_EQ(d.shard_count(), 1u);
  d.shard(0)->advance(123);
  EXPECT_EQ(d.now(), 123u);
  // A 1-shard sync is a no-op on the timeline — the identity guarantee the
  // committed baselines rely on.
  d.sync();
  EXPECT_EQ(d.shard(0)->now(), 123u);
}

TEST(ClockDomainTest, ZeroShardsClampsToOne) {
  util::ClockDomain d(0);
  EXPECT_EQ(d.shard_count(), 1u);
}

TEST(ClockDomainTest, NowIsMaxOverShards) {
  util::ClockDomain d(4);
  d.shard(0)->advance(10);
  d.shard(1)->advance(400);
  d.shard(2)->advance(30);
  EXPECT_EQ(d.now(), 400u);
  EXPECT_DOUBLE_EQ(d.now_seconds(), 400e-9);
  // Shards stay independent until a barrier.
  EXPECT_EQ(d.shard(0)->now(), 10u);
  EXPECT_EQ(d.shard(3)->now(), 0u);
}

TEST(ClockDomainTest, SyncPinsEveryShardToTheMerge) {
  util::ClockDomain d(3);
  d.shard(0)->advance(5);
  d.shard(2)->advance(777);
  d.sync();
  for (std::uint32_t i = 0; i < d.shard_count(); ++i) {
    EXPECT_EQ(d.shard(i)->now(), 777u) << "shard " << i;
  }
  // Idempotent: a second barrier moves nothing.
  d.sync();
  EXPECT_EQ(d.now(), 777u);
}

TEST(ClockDomainTest, ShardForWrapsLanesDeterministically) {
  util::ClockDomain d(3);
  EXPECT_EQ(d.shard_for(0), d.shard(0));
  EXPECT_EQ(d.shard_for(1), d.shard(1));
  EXPECT_EQ(d.shard_for(2), d.shard(2));
  EXPECT_EQ(d.shard_for(3), d.shard(0));
  EXPECT_EQ(d.shard_for(7), d.shard(1));
}

TEST(ClockDomainTest, ResetZeroesEveryShard) {
  util::ClockDomain d(4);
  for (std::uint32_t i = 0; i < 4; ++i) d.shard(i)->advance(100 * (i + 1));
  d.reset();
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(d.shard(i)->now(), 0u) << "shard " << i;
  }
}

TEST(ClockDomainTest, ResettingAnyMemberShardResetsTheDomain) {
  // Benches reset shard 0; layer teardown paths may reset others. Either
  // way the whole domain must drop to zero or the next repetition starts
  // with ghost time on the untouched shards.
  for (std::uint32_t initiator = 0; initiator < 3; ++initiator) {
    util::ClockDomain d(3);
    for (std::uint32_t i = 0; i < 3; ++i) d.shard(i)->advance(50 + i);
    d.shard(initiator)->reset();
    for (std::uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(d.shard(i)->now(), 0u)
          << "initiator " << initiator << " shard " << i;
    }
  }
}

TEST(ClockDomainTest, ResetFiresEachShardsHooksExactlyOnce) {
  util::ClockDomain d(3);
  std::vector<int> fired(3, 0);
  std::vector<util::SimClock::ResetHookId> ids;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ids.push_back(d.shard(i)->add_reset_hook([&fired, i] { ++fired[i]; }));
  }
  d.shard(1)->advance(9);
  d.reset();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fired[i], 1) << "shard " << i;
    d.shard(i)->remove_reset_hook(ids[i]);
  }
}

TEST(ClockDomainTest, AdoptingCtorKeepsTheAnchorIdentity) {
  auto anchor = std::make_shared<util::SimClock>();
  anchor->advance(42);
  std::vector<std::shared_ptr<util::SimClock>> shards = {
      anchor, std::make_shared<util::SimClock>()};
  util::ClockDomain d(std::move(shards));
  ASSERT_EQ(d.shard_count(), 2u);
  EXPECT_EQ(d.shard(0), anchor);
  EXPECT_EQ(d.now(), 42u);
  anchor->reset();
  EXPECT_EQ(d.now(), 0u);
}

TEST(ClockDomainTest, AdoptingCtorRejectsBadShardLists) {
  EXPECT_THROW(
      util::ClockDomain(std::vector<std::shared_ptr<util::SimClock>>{}),
      std::invalid_argument);
  std::vector<std::shared_ptr<util::SimClock>> with_null = {
      std::make_shared<util::SimClock>(), nullptr};
  EXPECT_THROW(util::ClockDomain(std::move(with_null)),
               std::invalid_argument);
}

TEST(ClockDomainTest, DestructionDetachesHooksFromAdoptedClocks) {
  auto anchor = std::make_shared<util::SimClock>();
  {
    util::ClockDomain d(
        std::vector<std::shared_ptr<util::SimClock>>{anchor});
    anchor->advance(7);
  }
  // The domain is gone; resetting the survivor must not touch freed state.
  anchor->reset();
  EXPECT_EQ(anchor->now(), 0u);
}

TEST(ClockDomainTest, MergeIsIndependentOfAdvanceOrder) {
  // Two domains reach the same per-shard times via different interleavings;
  // the merged timeline and post-sync state must be bit-identical.
  util::ClockDomain a(3), b(3);
  a.shard(0)->advance(100);
  a.shard(1)->advance(250);
  a.shard(2)->advance(250);

  b.shard(2)->advance(125);
  b.shard(1)->advance(250);
  b.shard(2)->advance(125);
  b.shard(0)->advance(100);

  EXPECT_EQ(a.now(), b.now());
  a.sync();
  b.sync();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.shard(i)->now(), b.shard(i)->now()) << "shard " << i;
  }
}

}  // namespace
}  // namespace mobiceal
