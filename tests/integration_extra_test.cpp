// Additional end-to-end robustness tests: attach-time geometry
// self-discovery, long-run space behaviour under GC cycles, and the
// adversary's delta computation on controlled scenarios.
#include <gtest/gtest.h>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using adversary::Snapshot;
using core::AuthResult;
using core::MobiCealDevice;

namespace {
constexpr char kPub[] = "x-public";
constexpr char kHid[] = "x-hidden";

util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed * 11 + i);
  }
  return out;
}
}  // namespace

TEST(AttachRobustness, GeometryIsSelfDescribing) {
  // attach() must work even when the caller's config disagrees with the
  // initialisation-time geometry: volume count, chunk size and KDF
  // parameters all come from the on-disk superblock/footer.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  {
    MobiCealDevice::Config init_cfg;
    init_cfg.num_volumes = 7;
    init_cfg.chunk_blocks = 8;
    init_cfg.kdf_iterations = 16;
    init_cfg.fs_inode_count = 128;
    auto dev = MobiCealDevice::initialize(disk, init_cfg, kPub, {kHid});
    dev->boot(kHid);
    dev->data_fs().write_file("/s.txt", util::bytes_of("survives"));
    dev->reboot();
  }
  MobiCealDevice::Config wrong_cfg;  // defaults: 8 volumes, 16-block chunks
  auto dev = MobiCealDevice::attach(disk, wrong_cfg);
  EXPECT_EQ(dev->num_volumes(), 7u);
  EXPECT_EQ(dev->pool().chunk_blocks(), 8u);
  ASSERT_EQ(dev->boot(kHid), AuthResult::kHidden);
  EXPECT_EQ(dev->data_fs().read_file("/s.txt"), util::bytes_of("survives"));
}

TEST(AttachRobustness, AttachRejectsUninitialisedDevice) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  EXPECT_THROW(MobiCealDevice::attach(disk, {}), util::MetadataError);
}

TEST(AttachRobustness, AttachRejectsForeignFooterWithoutPool) {
  // A device with a valid footer but no thin pool (e.g. plain Android FDE)
  // must be rejected cleanly, not misparsed.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  crypto::SecureRandom rng(1);
  const auto footer = fde::create_footer(rng, util::bytes_of("pw"),
                                         "aes-cbc-essiv:sha256");
  fde::write_footer(*disk, footer);
  EXPECT_THROW(MobiCealDevice::attach(disk, {}), util::MetadataError);
}

TEST(LongRun, SpaceStaysBoundedAcrossGcCycles) {
  // Sec. IV-D: "The data created by dummy writes will accumulate and may
  // fill the entire disk space over time. This issue can be mitigated by
  // periodically performing garbage collection." Verify the closed loop:
  // heavy public use + periodic hidden-mode GC keeps utilisation bounded
  // and the hidden data alive.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  MobiCealDevice::Config cfg;
  cfg.num_volumes = 5;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 256;
  cfg.dummy.lambda = 0.5;  // heavy dummy traffic
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});

  dev->boot(kHid);
  const auto secret = payload(120000, 9);
  dev->data_fs().write_file("/keep.bin", secret);
  dev->reboot();

  const std::uint64_t total = dev->pool().nr_chunks();
  std::uint64_t peak_used = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    dev->boot(kPub);
    for (int i = 0; i < 8; ++i) {
      const std::string p = "/tmp" + std::to_string(i);
      if (dev->data_fs().exists(p)) dev->data_fs().unlink(p);
      dev->data_fs().write_file(
          p, payload(50000, static_cast<std::uint8_t>(cycle * 8 + i)));
    }
    dev->reboot();
    peak_used = std::max(peak_used, total - dev->pool().free_chunks());
    // Nightly GC in hidden mode.
    dev->boot(kHid);
    dev->collect_garbage(0.6);
    EXPECT_EQ(dev->data_fs().read_file("/keep.bin"), secret)
        << "cycle " << cycle;
    dev->reboot();
    EXPECT_TRUE(dev->pool().check_consistency());
  }
  // Utilisation never ran away (the device is 16x larger than the live
  // working set; without GC the dummy traffic would keep accumulating).
  EXPECT_LT(peak_used, total / 2);
  // After the last GC, usage is comfortably below the peak.
  EXPECT_LT(total - dev->pool().free_chunks(), peak_used);
}

TEST(ThinDelta, CountsExactChunkMovements) {
  // Controlled scenario with known chunk movements, verified through raw
  // snapshots end to end.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  MobiCealDevice::Config cfg;
  cfg.num_volumes = 4;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.dummy.x = 1;  // stored_rand mod 1 == 0: dummy writes never fire
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  dev->boot(kPub);
  dev->data_fs().write_file("/a", payload(16 * 1024, 1));
  dev->data_fs().sync();
  dev->reboot();
  const auto d0 = Snapshot::take(*disk);

  dev->boot(kPub);
  // Exactly one new 16 KiB file = 1 fresh public data chunk (metadata
  // chunks are already provisioned from the first file).
  dev->data_fs().write_file("/b", payload(16 * 1024, 2));
  dev->data_fs().sync();
  dev->reboot();
  const auto d1 = Snapshot::take(*disk);

  adversary::ThinMetadataReader r0(d0), r1(d1);
  const auto delta = adversary::compute_thin_delta(r0, r1);
  EXPECT_EQ(delta.public_new_chunks, 1u);
  EXPECT_EQ(delta.non_public_new_chunks, 0u);  // x=1 disables dummy writes
  EXPECT_EQ(delta.freed_chunks, 0u);
}

TEST(ThinDelta, FreedChunksCountedOnDelete) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  MobiCealDevice::Config cfg;
  cfg.num_volumes = 4;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.dummy.lambda = 0.5;
  auto dev = MobiCealDevice::initialize(disk, cfg, kPub, {kHid});
  dev->boot(kPub);
  for (int i = 0; i < 10; ++i) {
    dev->data_fs().write_file("/f" + std::to_string(i), payload(40000, i));
  }
  dev->reboot();
  const auto d0 = Snapshot::take(*disk);

  // GC in hidden mode frees dummy chunks; the adversary sees the shrink.
  dev->boot(kHid);
  const auto reclaimed = dev->collect_garbage(0.9);
  dev->reboot();
  const auto d1 = Snapshot::take(*disk);

  adversary::ThinMetadataReader r0(d0), r1(d1);
  const auto delta = adversary::compute_thin_delta(r0, r1);
  EXPECT_EQ(delta.freed_chunks, reclaimed);
}
