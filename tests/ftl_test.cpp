// FtlDevice unit + integration tests: geometry, mapping round-trips, GC
// liveness under churn, wear balance, raw-snapshot parsing, attach()
// recovery, power-cut-during-GC crash consistency (through the same
// blockdev::FaultInjector the mirror tests use), flash timing asymmetry,
// and logical-image parity FTL-on vs FTL-off for EVERY registered scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/fault_injector.hpp"
#include "ftl/ftl_device.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

using namespace mobiceal;
using ftl::FtlConfig;
using ftl::FtlDevice;
using ftl::FtlGeometry;
using ftl::kUnmappedPage;
using ftl::PageState;
using ftl::RawFlashSnapshot;

namespace {

/// Small geometry that reaches GC quickly: 256 logical pages over 8-page
/// erase blocks with ~10% over-provisioning.
FtlConfig small_config() {
  FtlConfig cfg;
  cfg.logical_blocks = 256;
  cfg.pages_per_block = 8;
  cfg.over_provision_pct = 10;
  return cfg;
}

util::Bytes page_payload(std::size_t n, std::uint64_t salt) {
  util::Bytes out(n);
  util::SplitMix64 gen(salt * 0x9e3779b97f4a7c15ULL + 1);
  gen.fill(out);
  return out;
}

/// Shadow copy of the logical array for parity checking.
struct Shadow {
  explicit Shadow(std::uint64_t blocks, std::size_t bs)
      : image(blocks * bs), bs_(bs) {}
  void write(std::uint64_t block, util::ByteSpan data) {
    std::copy(data.begin(), data.end(), image.begin() + block * bs_);
  }
  util::Bytes image;
  std::size_t bs_;
};

}  // namespace

TEST(FtlGeometryTest, ComputeFloorsAndRegions) {
  const FtlConfig cfg = small_config();
  const FtlGeometry g = FtlGeometry::compute(cfg);

  EXPECT_EQ(g.logical_pages, 256u);
  EXPECT_EQ(g.phys_pages, g.erase_blocks * g.pages_per_block);
  // At least the logical span plus 4 erase blocks of GC slack.
  const std::uint64_t logical_eb =
      (g.logical_pages + g.pages_per_block - 1) / g.pages_per_block;
  EXPECT_GE(g.erase_blocks, logical_eb + 4);
  // The three medium regions tile without overlap.
  EXPECT_EQ(g.oob_start_block, g.phys_pages);
  EXPECT_EQ(g.meta_start_block, g.oob_start_block + g.oob_blocks);
  EXPECT_EQ(g.medium_blocks, g.meta_start_block + g.meta_blocks);
  // OOB entries for every physical page fit in the OOB region.
  EXPECT_LT(g.oob_block_of(g.phys_pages - 1), g.meta_start_block);
  EXPECT_LT(g.meta_block_of(g.erase_blocks - 1), g.medium_blocks);
}

TEST(FtlGeometryTest, OverProvisionGrowsThePool) {
  FtlConfig big = small_config();
  big.over_provision_pct = 50;
  EXPECT_GT(FtlGeometry::compute(big).erase_blocks,
            FtlGeometry::compute(small_config()).erase_blocks);
}

TEST(FtlDeviceTest, MappingRoundTrip) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  const std::size_t bs = dev->block_size();
  Shadow shadow(dev->num_blocks(), bs);

  // Scattered writes, some repeated, in a deterministic order.
  util::SplitMix64 rng(42);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t block = rng.next_u64() % dev->num_blocks();
    const util::Bytes data = page_payload(bs, block * 1000 + i);
    dev->write_block(block, data);
    shadow.write(block, data);
  }
  EXPECT_EQ(dev->logical_image(), shadow.image);
  EXPECT_EQ(dev->stats().host_writes, 200u);
}

TEST(FtlDeviceTest, UnmappedBlocksReadAsZeros) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  util::Bytes buf(dev->block_size(), 0xAB);
  dev->read_block(7, buf);
  EXPECT_TRUE(std::all_of(buf.begin(), buf.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(FtlDeviceTest, OverwriteLeavesStaleCopyOnFlash) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  const std::size_t bs = dev->block_size();
  const util::Bytes old_data = page_payload(bs, 1);
  const util::Bytes new_data = page_payload(bs, 2);
  dev->write_block(5, old_data);
  dev->write_block(5, new_data);

  const RawFlashSnapshot snap = dev->snapshot_raw_flash();
  ASSERT_NE(snap.map[5], kUnmappedPage);
  // The mapped copy is the new data...
  const util::ByteSpan mapped = snap.page_data(snap.map[5]);
  EXPECT_TRUE(std::equal(mapped.begin(), mapped.end(), new_data.begin()));
  // ...while the flash still holds the superseded bytes as a stale page —
  // the out-of-place history the raw-flash adversary reads.
  bool stale_copy_found = false;
  for (std::uint64_t p = 0; p < snap.pages.size(); ++p) {
    if (snap.pages[p].state != PageState::kStale) continue;
    const util::ByteSpan d = snap.page_data(p);
    if (std::equal(d.begin(), d.end(), old_data.begin())) {
      stale_copy_found = true;
      EXPECT_LT(snap.pages[p].seq, snap.pages[snap.map[5]].seq);
    }
  }
  EXPECT_TRUE(stale_copy_found);
}

TEST(FtlDeviceTest, GcStaysLiveUnderChurnAndPreservesData) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  const std::size_t bs = dev->block_size();
  Shadow shadow(dev->num_blocks(), bs);

  // ~4x the physical pool in random single-page overwrites: GC must erase
  // and relocate (random victims always carry live neighbours) while the
  // logical contents stay exact.
  util::SplitMix64 rng(7);
  const int writes = static_cast<int>(dev->geometry().phys_pages) * 4;
  for (int i = 0; i < writes; ++i) {
    const std::uint64_t block = rng.next_u64() % dev->num_blocks();
    const util::Bytes data = page_payload(bs, block ^ (i * 977));
    dev->write_block(block, data);
    shadow.write(block, data);
  }
  EXPECT_EQ(dev->logical_image(), shadow.image);
  EXPECT_GT(dev->stats().erases, 0u);
  EXPECT_GT(dev->stats().gc_relocations, 0u);
  EXPECT_GT(dev->free_pages(), 0u);
  EXPECT_GT(dev->stats().write_amplification(), 1.0);
}

TEST(FtlDeviceTest, WearStaysBalancedUnderChurn) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  util::SplitMix64 rng(11);
  util::Bytes data(dev->block_size());
  const int writes = static_cast<int>(dev->geometry().phys_pages) * 6;
  for (int i = 0; i < writes; ++i) {
    rng.fill(data);
    dev->write_block(rng.next_u64() % dev->num_blocks(), data);
  }
  const auto& wear = dev->erase_counts();
  const auto [mn, mx] = std::minmax_element(wear.begin(), wear.end());
  EXPECT_GT(*mx, 0u);
  // Dynamic wear leveling only: free-block selection is lowest-wear-first,
  // which bounds the spread among circulating blocks, but greedy GC leaves
  // cold blocks unerased (static wear leveling / data migration is the
  // ROADMAP follow-up). The deterministic workload lands at spread 14; the
  // bound has head-room but still catches a broken free-block picker,
  // which sends the hottest block's count to O(erases).
  EXPECT_LE(*mx - *mn, 20u);
  EXPECT_LT(*mx, dev->stats().erases / 4);
}

TEST(FtlSnapshotTest, ParseMatchesDeviceState) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  util::SplitMix64 rng(3);
  util::Bytes data(dev->block_size());
  for (int i = 0; i < 300; ++i) {
    rng.fill(data);
    dev->write_block(rng.next_u64() % dev->num_blocks(), data);
  }

  const RawFlashSnapshot snap = dev->snapshot_raw_flash();
  EXPECT_EQ(snap.logical_image(), dev->logical_image());
  EXPECT_EQ(snap.erase_counts, dev->erase_counts());
  // Every mapped page's data matches a logical read through the device.
  util::Bytes buf(dev->block_size());
  for (std::uint64_t l = 0; l < snap.map.size(); ++l) {
    if (snap.map[l] == kUnmappedPage) continue;
    dev->read_logical_untimed(l, 1, buf);
    const util::ByteSpan d = snap.page_data(snap.map[l]);
    EXPECT_TRUE(std::equal(d.begin(), d.end(), buf.begin()))
        << "logical " << l;
  }
}

TEST(FtlAttachTest, RebuildsMapFromMediumAndKeepsWorking) {
  const FtlConfig cfg = small_config();
  auto clock = std::make_shared<util::SimClock>();
  auto medium = std::make_shared<blockdev::MemBlockDevice>(
      FtlGeometry::compute(cfg).medium_blocks);

  util::Bytes image;
  {
    auto dev = FtlDevice::create(cfg, clock, medium);
    util::SplitMix64 rng(5);
    util::Bytes data(dev->block_size());
    for (int i = 0; i < 400; ++i) {  // enough churn that GC has run
      rng.fill(data);
      dev->write_block(rng.next_u64() % dev->num_blocks(), data);
    }
    image = dev->logical_image();
  }

  // Power cycle: a fresh device attaches to the bare medium and rebuilds
  // the exact map from the OOB region alone.
  auto dev = FtlDevice::attach(cfg, clock, medium);
  EXPECT_EQ(dev->logical_image(), image);

  // And the attached device is fully operational, GC included.
  util::SplitMix64 rng(6);
  util::Bytes data(dev->block_size());
  for (int i = 0; i < 600; ++i) {
    rng.fill(data);
    dev->write_block(rng.next_u64() % dev->num_blocks(), data);
  }
  EXPECT_GT(dev->stats().erases, 0u);
}

TEST(FtlPowerCutTest, AcknowledgedWritesSurviveACutDuringGc) {
  const FtlConfig cfg = small_config();
  const std::uint64_t medium_blocks = FtlGeometry::compute(cfg).medium_blocks;

  // Several cut points scattered across the churn (all far past format, so
  // the cut lands in host-write/GC traffic, often mid-GC: a GC relocation
  // or erase is several medium requests, and the injector kills the member
  // between any two of them).
  for (const std::int64_t cut_after : {400, 650, 900, 1200}) {
    auto clock = std::make_shared<util::SimClock>();
    auto mem = std::make_shared<blockdev::MemBlockDevice>(medium_blocks);
    blockdev::FaultPlan plan;
    plan.drop_after_requests = cut_after;
    auto injector = std::make_shared<blockdev::FaultInjector>(plan);
    auto flaky =
        std::make_shared<blockdev::FaultInjectedDevice>(mem, injector);

    auto dev = FtlDevice::create(cfg, clock, flaky);
    Shadow shadow(dev->num_blocks(), dev->block_size());
    util::SplitMix64 rng(static_cast<std::uint64_t>(cut_after));
    bool cut = false;
    std::uint64_t acknowledged = 0;
    for (int i = 0; i < 4000 && !cut; ++i) {
      const std::uint64_t block = rng.next_u64() % dev->num_blocks();
      const util::Bytes data =
          page_payload(dev->block_size(), block + i * 131u);
      try {
        dev->write_block(block, data);
        // Only acknowledged writes enter the shadow — exactly the crash
        // contract: a write that threw may or may not have reached flash.
        shadow.write(block, data);
        ++acknowledged;
      } catch (const util::IoError&) {
        cut = true;
      }
    }
    ASSERT_TRUE(cut) << "cut_after=" << cut_after;
    ASSERT_GT(acknowledged, 0u);

    // Power restored: attach to the RAW medium (the injector died with the
    // power supply). Every acknowledged write must read back exactly; the
    // interrupted program/GC in flight may only have produced garbage
    // pages, never corrupted acknowledged data.
    auto recovered =
        FtlDevice::attach(cfg, std::make_shared<util::SimClock>(), mem);
    EXPECT_EQ(recovered->logical_image(), shadow.image)
        << "cut_after=" << cut_after;
  }
}

TEST(FtlTimingTest, ReadProgramEraseAsymmetry) {
  const FtlConfig cfg = small_config();
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(cfg, clock);
  util::Bytes buf(dev->block_size(), 1);

  // An unmapped read is answered from the map: no flash page is sensed.
  std::uint64_t t0 = clock->now();
  dev->read_block(9, buf);
  const std::uint64_t unmapped_ns = clock->now() - t0;
  EXPECT_LT(unmapped_ns, cfg.timing.read_page_ns);

  // A program costs at least program_page_ns; a mapped read senses the
  // page but stays far cheaper than the program.
  t0 = clock->now();
  dev->write_block(9, buf);
  const std::uint64_t write_ns = clock->now() - t0;
  EXPECT_GE(write_ns, cfg.timing.program_page_ns);

  t0 = clock->now();
  dev->read_block(9, buf);
  const std::uint64_t read_ns = clock->now() - t0;
  EXPECT_GE(read_ns, cfg.timing.read_page_ns);
  EXPECT_LT(read_ns, write_ns);

  // Churn until GC has erased at least once, then confirm the erase cost
  // was charged to the triggering writes (virtual time includes it).
  util::SplitMix64 rng(13);
  const std::uint64_t before_ns = clock->now();
  std::uint64_t writes = 0;
  while (dev->stats().erases == 0) {
    rng.fill(buf);
    dev->write_block(rng.next_u64() % dev->num_blocks(), buf);
    ++writes;
    ASSERT_LT(writes, 10'000u);
  }
  const std::uint64_t churn_ns = clock->now() - before_ns;
  EXPECT_GE(churn_ns, writes * cfg.timing.program_page_ns +
                          dev->stats().erases * cfg.timing.erase_block_ns);
}

TEST(FtlTimingTest, ClockResetZeroesTheChannel) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  util::Bytes buf(dev->block_size(), 2);
  dev->write_block(0, buf);
  EXPECT_GT(clock->now(), 0u);

  // Bench repetitions reset the timeline; the device's absolute busy state
  // must reset with it or the next request would complete in the far
  // future.
  clock->reset();
  EXPECT_EQ(clock->now(), 0u);
  dev->write_block(1, buf);
  const std::uint64_t after = clock->now();
  EXPECT_GE(after, small_config().timing.program_page_ns);
  EXPECT_LT(after, small_config().timing.program_page_ns * 16);
}

TEST(FtlLogicalViewTest, ReadsLogicalAndRejectsWrites) {
  auto clock = std::make_shared<util::SimClock>();
  auto dev = FtlDevice::create(small_config(), clock);
  util::Bytes data = page_payload(dev->block_size(), 77);
  dev->write_block(3, data);

  ftl::FtlLogicalView view(dev);
  EXPECT_EQ(view.num_blocks(), dev->num_blocks());
  util::Bytes buf(view.block_size());
  const std::uint64_t before = clock->now();
  view.read_block(3, buf);
  EXPECT_EQ(buf, data);
  EXPECT_EQ(clock->now(), before);  // untimed
  EXPECT_THROW(view.write_block(3, data), util::PolicyError);
}

// ---- FTL-under-every-scheme parity -----------------------------------------
//
// The acceptance bar of the FTL layer: the SAME op sequence over the same
// scheme leaves a logical image (through the FTL's map) bit-identical to
// the image on a plain memory device. Out-of-place programs, GC and wear
// leveling may shuffle physical placement arbitrarily — the stack above
// must never see a different byte.
class FtlSchemeParity : public ::testing::TestWithParam<std::string> {};

namespace {

constexpr char kPub[] = "ftl-parity-public";
constexpr char kHid[] = "ftl-parity-hidden";
constexpr std::uint64_t kDiskBlocks = 16384;

api::SchemeOptions parity_options(
    std::shared_ptr<blockdev::BlockDevice> dev) {
  api::SchemeOptions opts;
  opts.device = std::move(dev);
  opts.public_password = kPub;
  opts.hidden_passwords = {kHid};
  opts.kdf_iterations = 16;
  opts.fs_inode_count = 128;
  opts.num_volumes = 4;
  opts.chunk_blocks = 4;
  opts.zero_cpu_models = true;
  opts.skip_random_fill = true;
  opts.clock = std::make_shared<util::SimClock>();
  return opts;
}

/// Deterministic op sequence — must not depend on the device underneath.
void drive(api::PdeScheme& scheme) {
  ASSERT_TRUE(scheme.unlock(kPub).ok);
  scheme.data_fs().write_file("/a.bin", page_payload(40000, 21));
  scheme.data_fs().write_file("/b.bin", page_payload(12000, 22));
  scheme.data_fs().sync();
  scheme.reboot();
  if (scheme.capabilities().has(api::Capability::kHiddenVolume)) {
    ASSERT_TRUE(scheme.unlock(kHid).ok);
    scheme.data_fs().write_file("/h.bin", page_payload(24000, 23));
    scheme.data_fs().sync();
    scheme.reboot();
  }
  ASSERT_TRUE(scheme.unlock(kPub).ok);
  scheme.data_fs().write_file("/a.bin", page_payload(40000, 24));
  scheme.data_fs().sync();
  scheme.reboot();
}

}  // namespace

TEST_P(FtlSchemeParity, LogicalImageMatchesPlainDevice) {
  // Plain memory device.
  auto mem = std::make_shared<blockdev::MemBlockDevice>(kDiskBlocks);
  {
    auto scheme = api::SchemeRegistry::create(GetParam(),
                                              parity_options(mem));
    drive(*scheme);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Same scheme, same ops, over an FTL.
  FtlConfig cfg;
  cfg.logical_blocks = kDiskBlocks;
  cfg.pages_per_block = 32;
  cfg.over_provision_pct = 10;
  auto flash =
      FtlDevice::create(cfg, std::make_shared<util::SimClock>());
  {
    auto scheme = api::SchemeRegistry::create(GetParam(),
                                              parity_options(flash));
    drive(*scheme);
    if (::testing::Test::HasFatalFailure()) return;
  }

  EXPECT_EQ(flash->logical_image(), mem->snapshot());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FtlSchemeParity,
    ::testing::ValuesIn(api::SchemeRegistry::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });
