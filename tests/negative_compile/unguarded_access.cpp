// Negative-compile fixture: writing a GUARDED_BY field without holding its
// mutex MUST be rejected by clang's -Wthread-safety (-Werror=thread-safety).
//
// Registered twice in tests/CMakeLists.txt:
//   * clang only: compiled with the analysis, expected to FAIL (WILL_FAIL)
//   * all compilers: compiled without the analysis, expected to succeed —
//     proving the fixture itself is valid C++ and the failure above comes
//     from the analysis, not a stale fixture.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void good_increment() {
    mobiceal::util::MutexLock lock(mu_);
    ++value_;
  }

  // BAD: touches value_ with mu_ not held. The thread-safety analysis must
  // reject this function; if it compiles under -Wthread-safety the
  // annotation plumbing is broken.
  void bad_increment() { ++value_; }

 private:
  mobiceal::util::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.good_increment();
  c.bad_increment();
  return 0;
}
