// Negative-compile fixture: calling a REQUIRES(mu) function without holding
// mu MUST be rejected by clang's -Wthread-safety (-Werror=thread-safety).
//
// This is the exact shape the allocator shards rely on:
// AllocShard::alloc_nth_free_locked() is REQUIRES(mu_) and every caller
// must hold that shard's mutex.
// See tests/CMakeLists.txt for the WILL_FAIL / control registration scheme.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Pool {
 public:
  void public_entry() {
    mobiceal::util::MutexLock lock(mu_);
    allocate_locked();
  }

  // BAD: calls the REQUIRES function with mu_ not held.
  void bad_entry() { allocate_locked(); }

 private:
  void allocate_locked() REQUIRES(mu_) { ++allocated_; }

  mobiceal::util::Mutex mu_;
  long allocated_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Pool p;
  p.public_entry();
  p.bad_entry();
  return 0;
}
