// PoolLayout + chunk-content forensics: the adversary's ability to locate
// and read raw data chunks from a cold image, for both the MobiCeal layout
// (LVM extents) and the MobiPluto layout (contiguous regions).
#include <gtest/gtest.h>

#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "baselines/mobipluto.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "util/stats.hpp"

using namespace mobiceal;
using adversary::PoolLayout;
using adversary::Snapshot;
using adversary::ThinMetadataReader;

namespace {
util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 5);
  }
  return out;
}
}  // namespace

TEST(PoolLayout, MobiCealChunkContentMatchesDataDevice) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  auto dev = core::MobiCealDevice::initialize(disk, cfg, "p", {"h"});
  dev->boot("p");
  dev->data_fs().write_file("/x.bin", payload(60000, 3));
  dev->reboot();

  const auto snap = Snapshot::take(*disk);
  ThinMetadataReader reader(snap);
  const auto layout = PoolLayout::mobiceal(reader.superblock(), 4096);
  EXPECT_EQ(layout.metadata_start_block, 0u);
  // The data region starts on a 1 MiB LVM extent boundary past metadata.
  EXPECT_EQ(layout.data_start_block % 256, 0u);
  EXPECT_GE(layout.data_start_block,
            thin::MetadataGeometry::compute(reader.superblock(), 4096)
                .total_blocks);

  // Reading a mapped public chunk through the layout matches the live
  // pool's data device content.
  const auto pub_chunks = reader.chunks_of_volume(0);
  ASSERT_FALSE(pub_chunks.empty());
  const std::uint64_t chunk = pub_chunks.front();
  const auto content = reader.chunk_content(snap, layout, chunk);
  auto data_dev = dev->pool().data_device();
  util::Bytes expect(4096 * 4);
  for (int b = 0; b < 4; ++b) {
    data_dev->read_block(chunk * 4 + b, {expect.data() + b * 4096, 4096});
  }
  EXPECT_EQ(content, expect);
  // And it is ciphertext, of course.
  EXPECT_TRUE(util::looks_random({content.data(), 4096}));
}

TEST(PoolLayout, MobiPlutoChunkContentMatchesDataRegion) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.skip_random_fill = true;
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, "p", "h");
  dev->boot("p");
  dev->data_fs().write_file("/y.bin", payload(60000, 5));
  dev->reboot();

  const auto snap = Snapshot::take(*disk);
  ThinMetadataReader reader(snap);
  const auto layout = PoolLayout::mobipluto(reader.superblock(), 4096);
  EXPECT_EQ(layout.data_start_block,
            thin::MetadataGeometry::compute(reader.superblock(), 4096)
                .total_blocks);
  const auto pub_chunks = reader.chunks_of_volume(0);
  ASSERT_FALSE(pub_chunks.empty());
  const auto content =
      reader.chunk_content(snap, layout, pub_chunks.front());
  // Sequential policy: the first public chunk is physical chunk 0, so its
  // content starts at the data region's first block.
  util::Bytes expect(4096);
  disk->read_block(layout.data_start_block + pub_chunks.front() * 4, expect);
  EXPECT_EQ(util::Bytes(content.begin(), content.begin() + 4096), expect);
}

TEST(PoolLayout, ReaderSeesCommittedStateOnly) {
  // Uncommitted writes are invisible in the on-disk metadata — the
  // adversary's view lags the live pool until the next commit, exactly as
  // on real hardware.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 4;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  auto dev = core::MobiCealDevice::initialize(disk, cfg, "p", {"h"});
  dev->boot("p");
  dev->data_fs().write_file("/pre.bin", payload(30000, 1));
  dev->data_fs().sync();
  const auto committed =
      ThinMetadataReader(Snapshot::take(*disk)).chunks_of_volume(0).size();

  dev->data_fs().write_file("/uncommitted.bin", payload(30000, 2));
  // no sync
  EXPECT_EQ(
      ThinMetadataReader(Snapshot::take(*disk)).chunks_of_volume(0).size(),
      committed);
  EXPECT_GT(dev->pool().mapped_chunks(0), committed);  // live state is ahead
  dev->data_fs().sync();
  EXPECT_GT(
      ThinMetadataReader(Snapshot::take(*disk)).chunks_of_volume(0).size(),
      committed);
}
