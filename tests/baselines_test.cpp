// Baseline system tests: Android FDE, MobiPluto, Mobiflage, HIVE write-only
// ORAM, DEFY log-structured device — functional correctness and the
// properties the comparison experiments rely on.
#include <gtest/gtest.h>

#include "baselines/android_fde.hpp"
#include "baselines/defy.hpp"
#include "baselines/hive_woram.hpp"
#include "baselines/mobiflage.hpp"
#include "baselines/mobipluto.hpp"
#include "baselines/timing_flows.hpp"
#include "blockdev/timed_device.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace mobiceal;

namespace {
util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed * 17 + i * 7);
  }
  return out;
}
}  // namespace

// ---- Android FDE -------------------------------------------------------------

TEST(AndroidFde, BootRequiresCorrectPassword) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(8192);
  baselines::AndroidFdeDevice::Config cfg;
  cfg.kdf_iterations = 16;
  auto dev = baselines::AndroidFdeDevice::initialize(disk, cfg, "pw");
  EXPECT_FALSE(dev->boot("wrong"));
  EXPECT_TRUE(dev->boot("pw"));
  dev->data_fs().write_file("/x", payload(10000, 1));
  EXPECT_EQ(dev->data_fs().read_file("/x"), payload(10000, 1));
}

TEST(AndroidFde, CiphertextOnDiskLooksRandom) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(8192);
  baselines::AndroidFdeDevice::Config cfg;
  cfg.kdf_iterations = 16;
  auto dev = baselines::AndroidFdeDevice::initialize(disk, cfg, "pw");
  ASSERT_TRUE(dev->boot("pw"));
  dev->data_fs().write_file("/zeros", util::Bytes(64 * 1024, 0));
  dev->data_fs().sync();
  // The FS superblock block is ciphertext on the raw device.
  util::Bytes raw(4096);
  disk->read_block(0, raw);
  EXPECT_TRUE(util::looks_random(raw));
}

// ---- MobiPluto ------------------------------------------------------------------

TEST(MobiPluto, PublicAndHiddenModesWork) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.chunk_blocks = 4;
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, "pub", "hid");

  EXPECT_EQ(dev->boot("pub"), baselines::MobiPlutoDevice::Mode::kPublic);
  dev->data_fs().write_file("/p", payload(30000, 2));
  dev->reboot();
  EXPECT_EQ(dev->boot("hid"), baselines::MobiPlutoDevice::Mode::kHidden);
  dev->data_fs().write_file("/h", payload(30000, 3));
  dev->reboot();
  EXPECT_EQ(dev->boot("pub"), baselines::MobiPlutoDevice::Mode::kPublic);
  EXPECT_EQ(dev->data_fs().read_file("/p"), payload(30000, 2));
  EXPECT_FALSE(dev->data_fs().exists("/h"));
}

TEST(MobiPluto, UsesSequentialAllocation) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.chunk_blocks = 4;
  cfg.fs_inode_count = 128;
  cfg.skip_random_fill = true;
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, "pub", "hid");
  EXPECT_EQ(dev->pool().superblock().policy, thin::AllocPolicy::kSequential);
}

TEST(MobiPluto, InitialRandomFillCoversDataArea) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.chunk_blocks = 4;
  cfg.fs_inode_count = 128;
  auto dev = baselines::MobiPlutoDevice::initialize(disk, cfg, "pub", "hid");
  // A block deep in the data area, never written by a volume, must look
  // random (the static defence).
  util::Bytes b(4096);
  disk->read_block(12000, b);
  EXPECT_TRUE(util::looks_random(b));
}

// ---- Mobiflage ---------------------------------------------------------------------

TEST(Mobiflage, PublicFatAndHiddenExtCoexist) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiflageDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  auto dev = baselines::MobiflageDevice::initialize(disk, cfg, "pub", "hid");

  EXPECT_EQ(dev->boot("pub"), baselines::MobiflageDevice::Mode::kPublic);
  dev->data_fs().write_file("/vacation.jpg", payload(50000, 4));
  dev->reboot();
  EXPECT_EQ(dev->boot("hid"), baselines::MobiflageDevice::Mode::kHidden);
  dev->data_fs().write_file("/secret.doc", payload(20000, 5));
  dev->reboot();
  EXPECT_EQ(dev->boot("pub"), baselines::MobiflageDevice::Mode::kPublic);
  EXPECT_EQ(dev->data_fs().read_file("/vacation.jpg"), payload(50000, 4));
}

TEST(Mobiflage, HiddenOffsetDeterministicAndInWindow) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiflageDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.skip_random_fill = true;
  auto dev = baselines::MobiflageDevice::initialize(disk, cfg, "pub", "hid");
  const std::uint64_t off = dev->hidden_offset("hid");
  EXPECT_EQ(off, dev->hidden_offset("hid"));
  const std::uint64_t usable =
      16384 - fde::footer_blocks(4096);
  EXPECT_GE(off, usable * 70 / 100);
  EXPECT_LT(off, usable * 95 / 100);
  EXPECT_NE(dev->hidden_offset("hid"), dev->hidden_offset("other"));
}

TEST(Mobiflage, OverwriteHazardDetectedByHighWaterMark) {
  // The failure mode MobiCeal's bitmap prevents (Sec. IV-A q3): the public
  // FAT volume grows sequentially into the hidden region.
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiflageDevice::Config cfg;
  cfg.kdf_iterations = 16;
  cfg.skip_random_fill = true;
  cfg.crypt_cpu = dm::CryptCpuModel::zero();
  auto dev = baselines::MobiflageDevice::initialize(disk, cfg, "pub", "hid");
  ASSERT_EQ(dev->boot("pub"), baselines::MobiflageDevice::Mode::kPublic);
  EXPECT_FALSE(dev->hidden_volume_endangered("hid"));
  // Fill the public volume until its high-water mark crosses the (secret,
  // randomised) hidden offset. The offset lies below 95% of the disk while
  // FAT can fill to ~99%, so the crossing happens before disk-full.
  bool endangered = false;
  for (int i = 0; i < 70 && !endangered; ++i) {
    dev->data_fs().write_file("/bulk" + std::to_string(i),
                              payload(1 << 20, static_cast<std::uint8_t>(i)));
    endangered = dev->hidden_volume_endangered("hid");
  }
  EXPECT_TRUE(endangered);
}

// ---- HIVE write-only ORAM ----------------------------------------------------------

TEST(HiveWoOram, RoundTripsUnderChurn) {
  auto phys = std::make_shared<blockdev::MemBlockDevice>(1024);
  const util::Bytes key(32, 0x66);
  baselines::HiveWoOram::Config cfg;
  auto oram = std::make_shared<baselines::HiveWoOram>(phys, key, cfg);
  ASSERT_EQ(oram->num_blocks(), 512u);
  // Write/overwrite a working set repeatedly; verify all versions stick.
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      oram->write_block(b, payload(4096, static_cast<std::uint8_t>(b + round)));
    }
  }
  util::Bytes r(4096);
  for (std::uint64_t b = 0; b < 64; ++b) {
    oram->read_block(b, r);
    EXPECT_EQ(r, payload(4096, static_cast<std::uint8_t>(b + 3))) << b;
  }
}

TEST(HiveWoOram, WriteAmplificationMatchesK) {
  auto phys = std::make_shared<blockdev::MemBlockDevice>(2048);
  const util::Bytes key(32, 0x67);
  baselines::HiveWoOram::Config cfg;
  cfg.k = 3;
  auto oram = std::make_shared<baselines::HiveWoOram>(phys, key, cfg);
  for (std::uint64_t b = 0; b < 128; ++b) {
    oram->write_block(b % 32, payload(4096, static_cast<std::uint8_t>(b)));
  }
  // Every logical write rewrites ~k physical slots.
  EXPECT_NEAR(oram->write_amplification(), 3.0, 0.25);
}

TEST(HiveWoOram, PhysicalWritePatternIndependentOfLogicalTarget) {
  // The ORAM property: writing the SAME logical block repeatedly still
  // touches uniformly random physical slots.
  auto phys_raw = std::make_shared<blockdev::MemBlockDevice>(2048);
  auto stats = std::make_shared<blockdev::StatsDevice>(phys_raw);
  const util::Bytes key(32, 0x68);
  baselines::HiveWoOram::Config cfg;
  auto oram = std::make_shared<baselines::HiveWoOram>(stats, key, cfg);
  // Snapshot-diff proxy: count distinct physical blocks changed while only
  // logical block 0 is written.
  auto before = phys_raw->snapshot();
  for (int i = 0; i < 50; ++i) oram->write_block(0, payload(4096, i));
  auto after = phys_raw->snapshot();
  std::uint64_t changed = 0;
  for (std::uint64_t b = 0; b < 2048; ++b) {
    if (!std::equal(before.begin() + b * 4096, before.begin() + (b + 1) * 4096,
                    after.begin() + b * 4096)) {
      ++changed;
    }
  }
  // 50 writes x k=3 slots, sampled uniformly from 2048: expect >100 distinct
  // physical locations — nothing like the single-block logical pattern.
  EXPECT_GT(changed, 100u);
}

TEST(HiveWoOram, StashStaysBoundedUnderChurn) {
  auto phys = std::make_shared<blockdev::MemBlockDevice>(512);
  const util::Bytes key(32, 0x69);
  baselines::HiveWoOram::Config cfg;
  cfg.space_blowup = 2.0;
  cfg.max_stash = 32;
  auto oram = std::make_shared<baselines::HiveWoOram>(phys, key, cfg);
  for (std::uint64_t w = 0; w < 1024; ++w) {
    oram->write_block(w % oram->num_blocks(),
                      payload(4096, static_cast<std::uint8_t>(w)));
    EXPECT_LE(oram->stash_size(), cfg.max_stash);
  }
}

TEST(HiveWoOram, StashOverflowFailsClosed) {
  // With a zero-capacity stash, the first blocked placement (all k sampled
  // slots occupied — probability ~(occupancy)^k per write) must fail
  // closed rather than silently drop data.
  auto phys = std::make_shared<blockdev::MemBlockDevice>(64);
  const util::Bytes key(32, 0x6A);
  baselines::HiveWoOram::Config cfg;
  cfg.space_blowup = 1.5;
  cfg.max_stash = 0;
  auto oram = std::make_shared<baselines::HiveWoOram>(phys, key, cfg);
  EXPECT_THROW(
      {
        for (int round = 0; round < 50; ++round) {
          for (std::uint64_t b = 0; b < oram->num_blocks(); ++b) {
            oram->write_block(b,
                              payload(4096, static_cast<std::uint8_t>(round)));
          }
        }
      },
      util::NoSpaceError);
}

TEST(HiveWoOram, StashDrainOrderIsDeterministic) {
  // Regression: the stash used to live in an unordered_map and the drain
  // path popped begin(), so WHICH stashed version landed in a freed slot —
  // and therefore the physical device image — depended on the standard
  // library's hash layout. The stash is now ordered (smallest logical
  // index drains first): a fixed-seed workload that actually exercises
  // multi-entry stash churn must end with bit-identical physical images on
  // every run and platform.
  const auto run = [](std::uint64_t& max_stash_seen) {
    auto phys = std::make_shared<blockdev::MemBlockDevice>(512);
    const util::Bytes key(32, 0x6B);
    baselines::HiveWoOram::Config cfg;
    cfg.space_blowup = 1.5;  // the policy minimum: occupancy ~2/3, so all
                             // k samples collide often and the stash churns
    cfg.max_stash = 64;
    auto oram = std::make_shared<baselines::HiveWoOram>(phys, key, cfg);
    for (std::uint64_t w = 0; w < 2048; ++w) {
      oram->write_block((w * 7) % oram->num_blocks(),
                        payload(4096, static_cast<std::uint8_t>(w)));
      max_stash_seen = std::max<std::uint64_t>(max_stash_seen,
                                               oram->stash_size());
    }
    // Round-trip under churn: every logical block reads back its last
    // version whether it sits in a slot or in the stash.
    util::Bytes r(4096);
    for (std::uint64_t b = 0; b < oram->num_blocks(); ++b) {
      std::uint64_t last = 0;
      bool written = false;
      for (std::uint64_t w = 0; w < 2048; ++w) {
        if ((w * 7) % oram->num_blocks() == b) {
          last = w;
          written = true;
        }
      }
      EXPECT_TRUE(written) << b;
      if (!written) continue;
      oram->read_block(b, r);
      EXPECT_EQ(r, payload(4096, static_cast<std::uint8_t>(last))) << b;
    }
    return phys->snapshot();
  };
  std::uint64_t max_stash_a = 0, max_stash_b = 0;
  const auto image_a = run(max_stash_a);
  const auto image_b = run(max_stash_b);
  // The workload must really hit the multi-entry drain path, or this test
  // pins nothing.
  EXPECT_GT(max_stash_a, 1u);
  EXPECT_EQ(image_a, image_b);
}

// ---- DEFY ---------------------------------------------------------------------------------

TEST(Defy, RoundTripsThroughLogAndGc) {
  auto phys = std::make_shared<blockdev::MemBlockDevice>(1024);
  const util::Bytes key(32, 0x70);
  baselines::DefyDevice::Config cfg;
  auto defy = std::make_shared<baselines::DefyDevice>(phys, key, cfg);
  ASSERT_EQ(defy->num_blocks(), 512u);
  // A working set near the logical capacity forces relocation GC.
  const std::uint64_t ws = 460;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t b = 0; b < ws; ++b) {
      defy->write_block(
          b, payload(4096, static_cast<std::uint8_t>(b * 3 + round)));
    }
  }
  EXPECT_GT(defy->gc_runs(), 0u);
  util::Bytes r(4096);
  for (std::uint64_t b = 0; b < ws; ++b) {
    defy->read_block(b, r);
    EXPECT_EQ(r, payload(4096, static_cast<std::uint8_t>(b * 3 + 3))) << b;
  }
}

TEST(Defy, WritesAreAmplifiedByMetadata) {
  auto phys_raw = std::make_shared<blockdev::MemBlockDevice>(4096);
  auto stats = std::make_shared<blockdev::StatsDevice>(phys_raw);
  const util::Bytes key(32, 0x71);
  baselines::DefyDevice::Config cfg;
  cfg.metadata_amp = 2;
  auto defy = std::make_shared<baselines::DefyDevice>(stats, key, cfg);
  for (std::uint64_t b = 0; b < 100; ++b) {
    defy->write_block(b, payload(4096, static_cast<std::uint8_t>(b)));
  }
  // 1 data page + metadata_amp metadata pages per logical write.
  EXPECT_EQ(stats->writes(), 100u * 3u);
}

// ---- Table II flow models ------------------------------------------------------------------

TEST(TimingFlows, ShapesMatchTableII) {
  const std::uint64_t partition = 13'700ull * 1024 * 1024;  // Nexus 4 userdata
  const auto dev = blockdev::TimingModel::nexus4_emmc();
  const auto android = core::AndroidTimingModel::nexus4();

  const auto fde = baselines::android_fde_flow(partition, dev, android);
  const auto pluto = baselines::mobipluto_flow(partition, dev, android);

  // Android FDE: ~18 min init (paper: 18m23s), sub-second boot (0.29 s).
  EXPECT_GT(fde.initialization_s, 14 * 60.0);
  EXPECT_LT(fde.initialization_s, 24 * 60.0);
  EXPECT_LT(fde.boot_s, 0.6);
  EXPECT_FALSE(fde.has_pde);

  // MobiPluto: ~37 min init (paper: 37m2s), ~1.4 s boot, >60 s switches.
  EXPECT_GT(pluto.initialization_s, 28 * 60.0);
  EXPECT_LT(pluto.initialization_s, 48 * 60.0);
  EXPECT_GT(pluto.boot_s, fde.boot_s);
  EXPECT_GT(pluto.switch_in_s, 55.0);
  EXPECT_GT(pluto.switch_out_s, 55.0);

  // Ordering: MobiPluto init is the slowest of all systems.
  EXPECT_GT(pluto.initialization_s, fde.initialization_s);
}
