// Known-answer tests for the from-scratch crypto substrate:
// FIPS-197 (AES), FIPS 180-4 (SHA), RFC 2202/4231 (HMAC), RFC 6070 (PBKDF2),
// RFC 8439 (ChaCha20), IEEE 1619 (XTS).
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/kdf.hpp"
#include "crypto/modes.hpp"
#include "crypto/random.hpp"
#include "crypto/sha.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace mobiceal;
using util::from_hex;
using util::to_hex;

// ---- AES (FIPS-197 Appendix C) ------------------------------------------------

TEST(Aes, Fips197Aes128) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  crypto::Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

TEST(Aes, Fips197Aes192) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  crypto::Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  crypto::Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

TEST(Aes, RejectsBadKeySizes) {
  const util::Bytes k(17, 0);
  EXPECT_THROW(crypto::Aes aes(k), util::CryptoError);
  const util::Bytes k2(8, 0);
  EXPECT_THROW(crypto::Aes aes(k2), util::CryptoError);
}

TEST(Aes, InPlaceRoundTrip) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  crypto::Aes aes(key);
  std::uint8_t buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = static_cast<std::uint8_t>(i * 7);
  std::uint8_t orig[16];
  std::memcpy(orig, buf, 16);
  aes.encrypt_block(buf, buf);
  EXPECT_NE(std::memcmp(buf, orig, 16), 0);
  aes.decrypt_block(buf, buf);
  EXPECT_EQ(std::memcmp(buf, orig, 16), 0);
}

// ---- CBC (NIST SP 800-38A F.2) ---------------------------------------------

TEST(Modes, CbcAes128Nist) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  crypto::Aes aes(key);
  util::Bytes ct(pt.size());
  crypto::cbc_encrypt(aes, iv, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2");
  util::Bytes back(pt.size());
  crypto::cbc_decrypt(aes, iv, ct, back);
  EXPECT_EQ(back, pt);
}

// ---- CTR (NIST SP 800-38A F.5) ---------------------------------------------

TEST(Modes, CtrAes128Nist) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  crypto::Aes aes(key);
  util::Bytes ct(pt.size());
  crypto::ctr_xcrypt(aes, nonce, pt, ct);
  EXPECT_EQ(to_hex(ct), "874d6191b620e3261bef6864990db6ce");
}

// ---- XTS (IEEE 1619 / XTS-AES-128 vector 4) -----------------------------------

TEST(Modes, XtsAes128Ieee1619) {
  // Vector 4 from IEEE 1619-2007 (data unit sequence number 0).
  const auto key = from_hex(
      "27182818284590452353602874713526"
      "31415926535897932384626433832795");
  const auto pt = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
      "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"
      "404142434445464748494a4b4c4d4e4f505152535455565758595a5b5c5d5e5f"
      "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f"
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
      "a0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8b9babbbcbdbebf"
      "c0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedf"
      "e0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
      "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"
      "404142434445464748494a4b4c4d4e4f505152535455565758595a5b5c5d5e5f"
      "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f"
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
      "a0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8b9babbbcbdbebf"
      "c0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedf"
      "e0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  crypto::XtsCipher xts(key);
  util::Bytes ct(pt.size());
  xts.encrypt_sector(0, pt, ct);
  EXPECT_EQ(to_hex({ct.data(), 32}),
            "27a7479befa1d476489f308cd4cfa6e2"
            "a96e4bbe3208ff25287dd3819616e89c");
  util::Bytes back(pt.size());
  xts.decrypt_sector(0, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Modes, XtsDifferentSectorsDiffer) {
  const util::Bytes key(32, 0x11);
  crypto::XtsCipher xts(key);
  const util::Bytes pt(512, 0xAB);
  util::Bytes c0(512), c1(512);
  xts.encrypt_sector(0, pt, c0);
  xts.encrypt_sector(1, pt, c1);
  EXPECT_NE(c0, c1);
}

// ---- ESSIV ------------------------------------------------------------------

TEST(Modes, EssivRoundTripAndSectorSensitivity) {
  const util::Bytes key(16, 0x42);
  crypto::CbcEssivCipher essiv(key);
  util::Bytes pt(512);
  for (std::size_t i = 0; i < pt.size(); ++i) {
    pt[i] = static_cast<std::uint8_t>(i);
  }
  util::Bytes ct(512), back(512);
  essiv.encrypt_sector(7, pt, ct);
  EXPECT_NE(ct, pt);
  essiv.decrypt_sector(7, ct, back);
  EXPECT_EQ(back, pt);
  // Decrypting with the wrong sector number must not yield the plaintext.
  essiv.decrypt_sector(8, ct, back);
  EXPECT_NE(back, pt);
}

TEST(Modes, CiphertextLooksRandom) {
  // The deniability argument requires ciphertext ~ random noise.
  const util::Bytes key(16, 0x5A);
  crypto::CbcEssivCipher essiv(key);
  const util::Bytes pt(4096, 0);  // extreme structure: all zeros
  util::Bytes ct(4096);
  essiv.encrypt_sector(3, pt, ct);
  EXPECT_TRUE(util::looks_random(ct));
}

// ---- SHA (FIPS 180-4 / NIST examples) -------------------------------------------

TEST(Sha, Sha256Abc) {
  EXPECT_EQ(to_hex(crypto::Sha256::digest(util::bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha, Sha256Empty) {
  EXPECT_EQ(to_hex(crypto::Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha, Sha256TwoBlocks) {
  EXPECT_EQ(
      to_hex(crypto::Sha256::digest(util::bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha, Sha256MillionA) {
  crypto::Sha256 h;
  const util::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  util::Bytes out(32);
  h.finish(out.data());
  EXPECT_EQ(to_hex(out),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha, Sha1Abc) {
  EXPECT_EQ(to_hex(crypto::Sha1::digest(util::bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha, Sha1Empty) {
  EXPECT_EQ(to_hex(crypto::Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

// ---- HMAC (RFC 2202 / RFC 4231) ---------------------------------------------------

TEST(Hmac, Rfc4231Case1Sha256) {
  const util::Bytes key(20, 0x0b);
  const auto mac =
      crypto::hmac(crypto::HashAlg::kSha256, key, util::bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc2202Case2Sha1) {
  const auto mac =
      crypto::hmac(crypto::HashAlg::kSha1, util::bytes_of("Jefe"),
                   util::bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const util::Bytes key(131, 0xaa);  // longer than the SHA-256 block
  const auto mac = crypto::hmac(
      crypto::HashAlg::kSha256, key,
      util::bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---- PBKDF2 (RFC 6070) --------------------------------------------------------------

TEST(Pbkdf2, Rfc6070Iter1) {
  const auto dk =
      crypto::pbkdf2(crypto::HashAlg::kSha1, util::bytes_of("password"),
                     util::bytes_of("salt"), 1, 20);
  EXPECT_EQ(to_hex(dk), "0c60c80f961f0e71f3a9b524af6012062fe037a6");
}

TEST(Pbkdf2, Rfc6070Iter4096) {
  const auto dk =
      crypto::pbkdf2(crypto::HashAlg::kSha1, util::bytes_of("password"),
                     util::bytes_of("salt"), 4096, 20);
  EXPECT_EQ(to_hex(dk), "4b007901b765489abead49d926f721d065a429c1");
}

TEST(Pbkdf2, Rfc6070LongInputs) {
  const auto dk = crypto::pbkdf2(
      crypto::HashAlg::kSha1,
      util::bytes_of("passwordPASSWORDpassword"),
      util::bytes_of("saltSALTsaltSALTsaltSALTsaltSALTsalt"), 4096, 25);
  EXPECT_EQ(to_hex(dk), "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038");
}

TEST(Pbkdf2, RejectsDegenerateParams) {
  EXPECT_THROW(crypto::pbkdf2(crypto::HashAlg::kSha1, {}, {}, 0, 16),
               util::CryptoError);
  EXPECT_THROW(crypto::pbkdf2(crypto::HashAlg::kSha1, {}, {}, 1, 0),
               util::CryptoError);
}

// ---- ChaCha20 (RFC 8439 §2.3.2) -------------------------------------------------------

TEST(ChaCha20, Rfc8439BlockVector) {
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = from_hex("000000090000004a00000000");
  std::uint8_t out[64];
  crypto::chacha20_block(key.data(), 1, nonce.data(), out);
  EXPECT_EQ(to_hex({out, 64}),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(SecureRandom, DeterministicPerSeed) {
  crypto::SecureRandom a(42), b(42), c(43);
  const auto ba = a.bytes(256);
  const auto bb = b.bytes(256);
  const auto bc = c.bytes(256);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(SecureRandom, OutputLooksRandom) {
  crypto::SecureRandom r(7);
  EXPECT_TRUE(util::looks_random(r.bytes(8192)));
}

TEST(SecureRandom, NoiseIndistinguishableFromCiphertext) {
  // Core deniability premise (Sec. IV-A, question 2): dummy noise and FDE
  // ciphertext must pass the same randomness battery.
  crypto::SecureRandom r(11);
  const auto noise = r.bytes(4096);
  const util::Bytes key(16, 0x33);
  crypto::CbcEssivCipher essiv(key);
  util::Bytes pt(4096, 0x00);
  util::Bytes ct(4096);
  essiv.encrypt_sector(9, pt, ct);
  EXPECT_TRUE(util::looks_random(noise));
  EXPECT_TRUE(util::looks_random(ct));
  // Identical statistics class: both entropy values within noise floor.
  EXPECT_NEAR(util::shannon_entropy(noise), util::shannon_entropy(ct), 0.2);
}

// ---- constant-time compare ----------------------------------------------------------------

TEST(Bytes, CtEqualBasics) {
  const auto a = util::bytes_of("secret-password");
  const auto b = util::bytes_of("secret-password");
  const auto c = util::bytes_of("secret-passw0rd");
  EXPECT_TRUE(util::ct_equal(a, b));
  EXPECT_FALSE(util::ct_equal(a, c));
  EXPECT_FALSE(util::ct_equal(a, util::bytes_of("short")));
}

TEST(Bytes, HexRoundTrip) {
  const auto data = from_hex("00ff10ab");
  EXPECT_EQ(to_hex(data), "00ff10ab");
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}
