// Android crypto-footer and key-derivation tests — the decoy/hidden key
// scheme that gives MobiCeal deniable key management (Sec. II-A, V-B).
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "crypto/random.hpp"
#include "fde/crypto_footer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace mobiceal;
using namespace mobiceal::fde;

TEST(Footer, SerialiseParseRoundTrip) {
  crypto::SecureRandom rng(1);
  const auto f =
      create_footer(rng, util::bytes_of("pw"), "aes-cbc-essiv:sha256", 16,
                    2000);
  const auto block = f.serialise(4096);
  const auto g = CryptoFooter::parse(block);
  EXPECT_EQ(g.magic, kFooterMagic);
  EXPECT_EQ(g.cipher_spec, "aes-cbc-essiv:sha256");
  EXPECT_EQ(g.key_size, 16u);
  EXPECT_EQ(g.kdf_iterations, 2000u);
  EXPECT_EQ(g.encrypted_master_key, f.encrypted_master_key);
  EXPECT_EQ(g.salt, f.salt);
}

TEST(Footer, ParseRejectsGarbage) {
  util::Bytes block(4096, 0xAB);
  EXPECT_THROW(CryptoFooter::parse(block), util::MetadataError);
  EXPECT_FALSE(CryptoFooter::probe(block));
}

TEST(Footer, SerialiseValidatesFields) {
  crypto::SecureRandom rng(2);
  auto f = create_footer(rng, util::bytes_of("pw"), "aes-cbc-essiv:sha256");
  f.salt.resize(8);
  EXPECT_THROW(f.serialise(4096), util::MetadataError);
  f = create_footer(rng, util::bytes_of("pw"), "aes-cbc-essiv:sha256");
  f.cipher_spec = std::string(100, 'x');
  EXPECT_THROW(f.serialise(4096), util::MetadataError);
}

TEST(Footer, LivesInLastSixteenKiB) {
  auto dev = std::make_shared<blockdev::MemBlockDevice>(64);
  crypto::SecureRandom rng(3);
  const auto f = create_footer(rng, util::bytes_of("pw"),
                               "aes-cbc-essiv:sha256");
  write_footer(*dev, f);
  // 16 KiB = 4 blocks of 4 KiB: footer block is num_blocks - 4.
  EXPECT_EQ(footer_blocks(4096), 4u);
  util::Bytes block(4096);
  dev->read_block(60, block);
  EXPECT_TRUE(CryptoFooter::probe(block));
  const auto g = read_footer(*dev);
  EXPECT_EQ(g.salt, f.salt);
}

TEST(Kdf, KekDerivationIsDeterministicAndSaltSensitive) {
  const auto pw = util::bytes_of("correct horse battery staple");
  const util::Bytes salt1(16, 0x01), salt2(16, 0x02);
  const auto a = derive_kek(pw, salt1, 100);
  const auto b = derive_kek(pw, salt1, 100);
  const auto c = derive_kek(pw, salt2, 100);
  EXPECT_TRUE(util::ct_equal(a.kek.span(), b.kek.span()));
  EXPECT_TRUE(util::ct_equal(a.iv.span(), b.iv.span()));
  EXPECT_FALSE(util::ct_equal(a.kek.span(), c.kek.span()));
}

TEST(Keys, CorrectPasswordRecoversMasterKey) {
  crypto::SecureRandom rng(4);
  // Recreate with a known RNG so we can regenerate the master key stream:
  // instead, verify by consistency: decrypting twice yields the same key,
  // and an FDE stack built on it round-trips (covered in baselines tests).
  const auto f = create_footer(rng, util::bytes_of("pw"),
                               "aes-cbc-essiv:sha256");
  const auto k1 = decrypt_master_key(f, util::bytes_of("pw"));
  const auto k2 = decrypt_master_key(f, util::bytes_of("pw"));
  EXPECT_TRUE(util::ct_equal(k1.span(), k2.span()));
  EXPECT_EQ(k1.size(), 16u);
}

TEST(Keys, AnyPasswordYieldsAKeyNeverAnError) {
  // The deniability property: the footer is a silent oracle. Wrong
  // passwords decrypt to *some* key; nothing distinguishes them here.
  crypto::SecureRandom rng(5);
  const auto f = create_footer(rng, util::bytes_of("real-password"),
                               "aes-cbc-essiv:sha256");
  const auto real = decrypt_master_key(f, util::bytes_of("real-password"));
  for (int i = 0; i < 50; ++i) {
    const auto guess = "guess-" + std::to_string(i);
    const auto k = decrypt_master_key(f, util::bytes_of(guess));
    EXPECT_EQ(k.size(), 16u);
    EXPECT_FALSE(util::ct_equal(k.span(), real.span()));
  }
}

TEST(Keys, HiddenKeySchemeSharesTheCiphertext) {
  // MobiCeal's trick (Sec. V-B): the hidden key is the decryption of the
  // SAME footer ciphertext under the hidden password — no extra footer
  // space, deterministic, and distinct from the decoy key.
  crypto::SecureRandom rng(6);
  const auto f = create_footer(rng, util::bytes_of("decoy"),
                               "aes-cbc-essiv:sha256");
  const auto decoy = decrypt_master_key(f, util::bytes_of("decoy"));
  const auto hidden1 = decrypt_master_key(f, util::bytes_of("hidden"));
  const auto hidden2 = decrypt_master_key(f, util::bytes_of("hidden"));
  EXPECT_TRUE(util::ct_equal(hidden1.span(), hidden2.span()));
  EXPECT_FALSE(util::ct_equal(hidden1.span(), decoy.span()));
}

TEST(Keys, FooterFieldsLookRandomInSnapshots) {
  // Salt and encrypted master key carry no structure an adversary could
  // use to infer how many passwords exist.
  crypto::SecureRandom rng(7);
  util::Bytes accumulated;
  for (int i = 0; i < 64; ++i) {
    const auto f = create_footer(rng, util::bytes_of("pw"),
                                 "aes-cbc-essiv:sha256");
    accumulated.insert(accumulated.end(), f.salt.begin(), f.salt.end());
    accumulated.insert(accumulated.end(), f.encrypted_master_key.begin(),
                       f.encrypted_master_key.end());
  }
  EXPECT_TRUE(util::looks_random(accumulated));
}

TEST(Keys, RejectsBadKeySize) {
  crypto::SecureRandom rng(8);
  EXPECT_THROW(
      create_footer(rng, util::bytes_of("pw"), "aes-cbc-essiv:sha256", 15),
      util::CryptoError);
}

// Parameterized: the scheme works for XTS-sized keys too.
class FooterKeySize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FooterKeySize, RoundTrips) {
  crypto::SecureRandom rng(9 + GetParam());
  const auto f = create_footer(rng, util::bytes_of("pw"), "aes-xts-plain64",
                               GetParam());
  const auto block = f.serialise(4096);
  const auto g = CryptoFooter::parse(block);
  EXPECT_EQ(g.key_size, GetParam());
  const auto k = decrypt_master_key(g, util::bytes_of("pw"));
  EXPECT_EQ(k.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(KeySizes, FooterKeySize,
                         ::testing::Values(16u, 32u, 64u));
