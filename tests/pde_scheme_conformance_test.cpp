// PdeScheme conformance suite — one parameterized test battery run against
// EVERY scheme in the registry. This is the contract each backend adapter
// signs: wrong passwords keep the device locked, unlocks round-trip data,
// reboot() relocks, and the Capabilities bitset matches what the scheme
// actually does (fast switch, hidden volumes, garbage collection).
#include <gtest/gtest.h>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using api::Capability;
using api::SchemeOptions;
using api::SchemeRegistry;
using api::VolumeClass;

namespace {

constexpr char kPub[] = "conf-public-pw";
constexpr char kHid[] = "conf-hidden-pw";
constexpr char kWrong[] = "not-a-password";

util::Bytes payload(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed * 31 + i * 11);
  }
  return out;
}

/// Small, fast device/scheme options shared by every conformance case.
SchemeOptions small_options(std::shared_ptr<blockdev::BlockDevice> dev) {
  SchemeOptions opts;
  opts.device = std::move(dev);
  opts.public_password = kPub;
  opts.hidden_passwords = {kHid};
  opts.kdf_iterations = 16;
  opts.fs_inode_count = 128;
  opts.num_volumes = 4;
  opts.chunk_blocks = 4;
  opts.zero_cpu_models = true;
  opts.skip_random_fill = true;
  return opts;
}

class PdeSchemeConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    disk_ = std::make_shared<blockdev::MemBlockDevice>(16384);
    scheme_ = SchemeRegistry::create(GetParam(), small_options(disk_));
    caps_ = scheme_->capabilities();
  }

  std::shared_ptr<blockdev::MemBlockDevice> disk_;
  std::unique_ptr<api::PdeScheme> scheme_;
  api::Capabilities caps_;
};

TEST_P(PdeSchemeConformance, StartsLockedAndWrongPasswordStaysLocked) {
  EXPECT_TRUE(scheme_->locked());
  EXPECT_THROW(scheme_->data_fs(), util::PolicyError);

  const auto result = scheme_->unlock(kWrong);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(scheme_->locked());
  EXPECT_THROW(scheme_->data_fs(), util::PolicyError);
}

TEST_P(PdeSchemeConformance, PublicUnlockRoundTripsAFile) {
  const auto result = scheme_->unlock(kPub);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.volume, VolumeClass::kPublic);
  EXPECT_FALSE(scheme_->locked());

  scheme_->data_fs().write_file("/public.bin", payload(20000, 1));
  scheme_->data_fs().sync();
  scheme_->reboot();

  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  EXPECT_EQ(scheme_->data_fs().read_file("/public.bin"), payload(20000, 1));
}

TEST_P(PdeSchemeConformance, RebootReturnsToLocked) {
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  scheme_->reboot();
  EXPECT_TRUE(scheme_->locked());
  EXPECT_THROW(scheme_->data_fs(), util::PolicyError);
  // And a second unlock works after the relock.
  EXPECT_TRUE(scheme_->unlock(kPub).ok);
}

TEST_P(PdeSchemeConformance, DoubleUnlockIsAPolicyError) {
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  EXPECT_THROW(scheme_->unlock(kPub), util::PolicyError);
}

TEST_P(PdeSchemeConformance, HiddenVolumeMatchesCapability) {
  const auto result = scheme_->unlock(kHid);
  if (!caps_.has(Capability::kHiddenVolume)) {
    // No hidden volume: the hidden password is just a wrong password.
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(scheme_->locked());
    return;
  }
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.volume, VolumeClass::kHidden);

  scheme_->data_fs().write_file("/secret.bin", payload(12000, 2));
  scheme_->data_fs().sync();
  scheme_->reboot();

  // The public view must not show the hidden file.
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  EXPECT_FALSE(scheme_->data_fs().exists("/secret.bin"));
  scheme_->reboot();

  // And the hidden volume round-trips it.
  const auto again = scheme_->unlock(kHid);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.volume, VolumeClass::kHidden);
  EXPECT_EQ(scheme_->data_fs().read_file("/secret.bin"), payload(12000, 2));
}

TEST_P(PdeSchemeConformance, FastSwitchMatchesCapability) {
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  const bool switched = scheme_->switch_volume(kHid);
  EXPECT_EQ(switched, caps_.has(Capability::kFastSwitch));
  if (switched) {
    // The mount is now the hidden volume.
    scheme_->data_fs().write_file("/switched.bin", payload(4000, 3));
    scheme_->data_fs().sync();
    scheme_->reboot();
    ASSERT_TRUE(scheme_->unlock(kHid).ok);
    EXPECT_EQ(scheme_->data_fs().read_file("/switched.bin"),
              payload(4000, 3));
  }
}

TEST_P(PdeSchemeConformance, FastSwitchRejectsWrongPassword) {
  if (!caps_.has(Capability::kFastSwitch)) return;
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  EXPECT_FALSE(scheme_->switch_volume(kWrong));
  // Still mounted on the public volume.
  EXPECT_FALSE(scheme_->locked());
  scheme_->data_fs().write_file("/still-public.bin", payload(1000, 4));
}

TEST_P(PdeSchemeConformance, GarbageCollectionMatchesCapability) {
  if (!caps_.has(Capability::kGarbageCollection)) {
    ASSERT_TRUE(scheme_->unlock(kPub).ok);
    EXPECT_THROW(scheme_->collect_garbage(), util::PolicyError);
    return;
  }
  // GC is only legal from hidden mode (Sec. IV-D) — the only mode that can
  // tell dummy chunks from hidden chunks.
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  scheme_->data_fs().write_file("/traffic.bin", payload(60000, 5));
  scheme_->data_fs().sync();
  EXPECT_THROW(scheme_->collect_garbage(), util::PolicyError);
  scheme_->reboot();

  ASSERT_TRUE(scheme_->unlock(kHid).ok);
  EXPECT_NO_THROW(scheme_->collect_garbage(0.5));
}

TEST_P(PdeSchemeConformance, AttachReopensAnExistingImage) {
  const auto& entry = SchemeRegistry::entry(GetParam());
  if (!entry.supports_attach) {
    // RAM-mapped translators (DEFY/HIVE reproductions) refuse to attach.
    auto opts = small_options(disk_);
    opts.format = false;
    EXPECT_THROW(SchemeRegistry::create(GetParam(), opts),
                 util::PolicyError);
    return;
  }
  ASSERT_TRUE(scheme_->unlock(kPub).ok);
  scheme_->data_fs().write_file("/persist.bin", payload(9000, 6));
  scheme_->data_fs().sync();
  scheme_->reboot();
  scheme_.reset();  // power off, drop all in-RAM state

  auto opts = small_options(disk_);
  opts.format = false;
  auto reopened = SchemeRegistry::create(GetParam(), opts);
  ASSERT_TRUE(reopened->unlock(kPub).ok);
  EXPECT_EQ(reopened->data_fs().read_file("/persist.bin"), payload(9000, 6));
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, PdeSchemeConformance,
    ::testing::ValuesIn(SchemeRegistry::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;  // names are already identifier-safe
    });

}  // namespace
