// DummyWriteEngine distribution properties — the statistical guarantees the
// deniability argument rests on (DESIGN.md §6.1-6.2), checked empirically
// with parameterized sweeps over lambda and x.
#include <gtest/gtest.h>

#include <cmath>

#include "blockdev/block_device.hpp"
#include "core/dummy_write.hpp"
#include "crypto/random.hpp"
#include "thin/thin_pool.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

using namespace mobiceal;
using core::DummyWriteConfig;
using core::DummyWriteEngine;

namespace {
DummyWriteConfig base_config() {
  DummyWriteConfig cfg;
  cfg.num_volumes = 8;
  return cfg;
}
}  // namespace

TEST(DummyWrite, RejectsDegenerateConfig) {
  util::Xoshiro256 rng(1);
  auto cfg = base_config();
  cfg.x = 0;
  EXPECT_THROW(DummyWriteEngine(cfg, rng, nullptr), util::PolicyError);
  cfg = base_config();
  cfg.lambda = 0.0;
  EXPECT_THROW(DummyWriteEngine(cfg, rng, nullptr), util::PolicyError);
  cfg = base_config();
  cfg.num_volumes = 1;
  EXPECT_THROW(DummyWriteEngine(cfg, rng, nullptr), util::PolicyError);
}

TEST(DummyWrite, TriggerProbabilityMatchesStoredRand) {
  // For a FIXED stored_rand, P(trigger) = (stored_rand mod x) / 2x exactly.
  util::Xoshiro256 rng(7);
  auto cfg = base_config();
  cfg.x = 50;
  DummyWriteEngine engine(cfg, rng, nullptr);
  const double expected =
      static_cast<double>(engine.stored_rand() % cfg.x) / (2.0 * cfg.x);
  int fires = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (engine.should_trigger()) ++fires;
  }
  EXPECT_NEAR(static_cast<double>(fires) / kTrials, expected, 0.02);
}

TEST(DummyWrite, TriggerProbabilityNeverReachesHalf) {
  // The design guarantee: "the probability of performing dummy write will
  // be always under 50%" (Sec. IV-B) — for every stored_rand value.
  util::Xoshiro256 rng(11);
  auto cfg = base_config();
  cfg.x = 10;
  DummyWriteEngine engine(cfg, rng, nullptr);
  for (int refresh = 0; refresh < 50; ++refresh) {
    engine.refresh_stored_rand();
    int fires = 0;
    const int kTrials = 4000;
    for (int i = 0; i < kTrials; ++i) {
      if (engine.should_trigger()) ++fires;
    }
    EXPECT_LT(static_cast<double>(fires) / kTrials, 0.5);
  }
}

TEST(DummyWrite, StoredRandRefreshesOnClockOnly) {
  util::Xoshiro256 rng(13);
  util::SimClock clock;
  auto cfg = base_config();
  cfg.refresh_ns = util::SimClock::from_seconds(3600);
  DummyWriteEngine engine(cfg, rng, &clock);
  const std::uint64_t initial = engine.stored_rand();

  // Within the refresh window: stable.
  clock.advance(util::SimClock::from_seconds(100));
  engine.should_trigger();  // decisions don't refresh
  EXPECT_EQ(engine.stored_rand(), initial);

  // Past the window: the next public allocation refreshes it. Drive via a
  // tiny pool.
  auto meta = std::make_shared<blockdev::MemBlockDevice>(64);
  auto data = std::make_shared<blockdev::MemBlockDevice>(256);
  thin::ThinPool::Config pc;
  pc.chunk_blocks = 4;
  pc.max_volumes = 8;
  pc.cpu = thin::ThinCpuModel::zero();
  auto pool = thin::ThinPool::format(meta, data, pc);
  for (std::uint32_t v = 0; v < 8; ++v) pool->create_thin(v, 8);
  clock.advance(util::SimClock::from_seconds(4000));
  engine.on_public_allocation(*pool);
  EXPECT_NE(engine.stored_rand(), initial);
}

// Parameterized: burst-size distribution across lambda values.
class BurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(BurstSweep, MeanMatchesRoundedExponential) {
  const double lambda = GetParam();
  util::Xoshiro256 rng(17);
  auto cfg = base_config();
  cfg.lambda = lambda;
  DummyWriteEngine engine(cfg, rng, nullptr);
  double sum = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += engine.burst_size();
  // Exact mean of round(Exp(lambda)): sum_{k>=1} P(X >= k - 1/2)
  //   = e^{-lambda/2} / (1 - e^{-lambda}).
  const double expected =
      std::exp(-lambda / 2.0) / (1.0 - std::exp(-lambda));
  EXPECT_NEAR(sum / kTrials, expected, 0.03 * expected + 0.01);
}

TEST_P(BurstSweep, VarianceIsWide) {
  // "the exponential distribution ... can ensure that the value of m can
  // have a large variance which is good for deniability" (Sec. IV-B).
  const double lambda = GetParam();
  util::Xoshiro256 rng(19);
  auto cfg = base_config();
  cfg.lambda = lambda;
  cfg.rounding = DummyWriteConfig::Rounding::kCeil;  // strictly positive
  DummyWriteEngine engine(cfg, rng, nullptr);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(engine.burst_size()));
  }
  // Exponential: stddev ≈ mean (discretisation shifts it slightly).
  EXPECT_GT(stats.stddev(), 0.5 / lambda);
  EXPECT_GE(stats.min(), 1.0);  // ceil rounding never yields zero
}

INSTANTIATE_TEST_SUITE_P(Lambdas, BurstSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST(DummyWrite, BurstIsCappedAtSixtyFour) {
  util::Xoshiro256 rng(23);
  auto cfg = base_config();
  cfg.lambda = 0.01;  // absurdly heavy tail
  DummyWriteEngine engine(cfg, rng, nullptr);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(engine.burst_size(), 64u);
  }
}

TEST(DummyWrite, VolumeSelectionFollowsPaperFormula) {
  // j = (stored_rand mod (n-1)) + 2, constant between refreshes.
  util::Xoshiro256 rng(29);
  auto cfg = base_config();
  cfg.num_volumes = 6;
  DummyWriteEngine engine(cfg, rng, nullptr);
  for (int refresh = 0; refresh < 64; ++refresh) {
    engine.refresh_stored_rand();
    const std::uint32_t expected =
        static_cast<std::uint32_t>(engine.stored_rand() % 5) + 2;
    EXPECT_EQ(engine.pick_dummy_volume(), expected);
    EXPECT_GE(engine.pick_dummy_volume(), 2u);
    EXPECT_LE(engine.pick_dummy_volume(), 6u);
    // Stable until the next refresh.
    EXPECT_EQ(engine.pick_dummy_volume(), engine.pick_dummy_volume());
  }
}

TEST(DummyWrite, VolumeSelectionCoversAllDummyVolumesAcrossRefreshes) {
  util::Xoshiro256 rng(31);
  auto cfg = base_config();
  cfg.num_volumes = 5;
  DummyWriteEngine engine(cfg, rng, nullptr);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    engine.refresh_stored_rand();
    seen.insert(engine.pick_dummy_volume());
  }
  EXPECT_EQ(seen.size(), 4u);  // V2..V5 all reachable
}

// Parameterized over x: long-run trigger rate averaged over stored_rand
// refreshes approaches (x-1)/(4x) ~ 25%.
class TriggerSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TriggerSweep, LongRunRateNearQuarter) {
  const std::uint32_t x = GetParam();
  util::Xoshiro256 rng(37 + x);
  auto cfg = base_config();
  cfg.x = x;
  DummyWriteEngine engine(cfg, rng, nullptr);
  int fires = 0;
  const int kRefreshes = 400;
  const int kPerState = 200;
  for (int r = 0; r < kRefreshes; ++r) {
    engine.refresh_stored_rand();
    for (int i = 0; i < kPerState; ++i) {
      if (engine.should_trigger()) ++fires;
    }
  }
  const double rate =
      static_cast<double>(fires) / (kRefreshes * kPerState);
  const double expected = (static_cast<double>(x) - 1.0) / (4.0 * x);
  EXPECT_NEAR(rate, expected, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Xs, TriggerSweep,
                         ::testing::Values(2u, 10u, 50u, 100u));

TEST(DummyWrite, EndToEndStatsAccounting) {
  // Drive the engine against a real pool and verify the counters add up.
  crypto::SecureRandom rng(41);
  auto meta = std::make_shared<blockdev::MemBlockDevice>(64);
  auto data = std::make_shared<blockdev::MemBlockDevice>(4096);
  thin::ThinPool::Config pc;
  pc.chunk_blocks = 4;
  pc.max_volumes = 8;
  pc.policy = thin::AllocPolicy::kRandom;
  pc.cpu = thin::ThinCpuModel::zero();
  auto pool = thin::ThinPool::format(meta, data, pc);
  for (std::uint32_t v = 0; v < 8; ++v) pool->create_thin(v, 128);

  auto cfg = base_config();
  cfg.lambda = 0.5;  // plenty of dummy traffic
  DummyWriteEngine engine(cfg, rng, nullptr);
  for (int i = 0; i < 300; ++i) engine.on_public_allocation(*pool);

  const auto& st = engine.stats();
  EXPECT_EQ(st.public_allocations, 300u);
  EXPECT_GT(st.triggers, 0u);
  EXPECT_LE(st.triggers, 300u);
  EXPECT_GE(st.blocks_written, st.chunks_written);  // >=1 block per chunk
  EXPECT_LE(st.blocks_written, st.chunks_written * 4);
  // Every dummy chunk landed in a non-public volume.
  std::uint64_t non_public_mapped = 0;
  for (std::uint32_t v = 1; v < 8; ++v) {
    non_public_mapped += pool->mapped_chunks(v);
  }
  EXPECT_EQ(non_public_mapped, st.chunks_written);
  EXPECT_EQ(pool->mapped_chunks(0), 0u);  // never writes to the public volume
}

TEST(DummyWrite, SkipsGracefullyWhenDummyVolumesFull) {
  crypto::SecureRandom rng(43);
  auto meta = std::make_shared<blockdev::MemBlockDevice>(64);
  auto data = std::make_shared<blockdev::MemBlockDevice>(512);
  thin::ThinPool::Config pc;
  pc.chunk_blocks = 4;
  pc.max_volumes = 4;
  pc.cpu = thin::ThinCpuModel::zero();
  auto pool = thin::ThinPool::format(meta, data, pc);
  for (std::uint32_t v = 0; v < 4; ++v) pool->create_thin(v, 1);  // tiny

  auto cfg = base_config();
  cfg.num_volumes = 4;
  cfg.lambda = 0.2;
  DummyWriteEngine engine(cfg, rng, nullptr);
  for (int i = 0; i < 500; ++i) engine.on_public_allocation(*pool);
  // With 1-chunk dummy volumes the engine must hit the no-space path and
  // carry on rather than throwing.
  EXPECT_GT(engine.stats().skipped_no_space, 0u);
}
