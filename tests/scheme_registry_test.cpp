// SchemeRegistry behaviour: lookup, metadata, error paths, and the
// registered-capability table the harnesses rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "util/error.hpp"

using namespace mobiceal;
using api::Capability;
using api::SchemeRegistry;

TEST(SchemeRegistry, AllSixBackendsAreRegistered) {
  const auto names = SchemeRegistry::names();
  EXPECT_EQ(names.size(), 6u);
  for (const char* expected : {"android_fde", "defy", "hive", "mobiceal",
                               "mobiflage", "mobipluto"}) {
    EXPECT_TRUE(SchemeRegistry::contains(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SchemeRegistry, CapabilityTableMatchesTheSystems) {
  using C = Capability;
  // MobiCeal is the only backend with the full set (Table II).
  const auto& mc = SchemeRegistry::entry("mobiceal").capabilities;
  for (C c : {C::kHiddenVolume, C::kMultiSnapshotSecure, C::kFastSwitch,
              C::kGarbageCollection, C::kDummyWrites}) {
    EXPECT_TRUE(mc.has(c));
  }
  // Android FDE: encryption only (the writeback-cache bit is a stack
  // property, not a PDE feature — dm-crypt over the raw region tolerates
  // write combining).
  EXPECT_EQ(SchemeRegistry::entry("android_fde").capabilities.bits(),
            static_cast<std::uint32_t>(C::kWritebackCacheSafe));
  // Single-snapshot PDE systems: hidden volume, nothing else.
  for (const char* s : {"mobipluto", "mobiflage"}) {
    const auto caps = SchemeRegistry::entry(s).capabilities;
    EXPECT_TRUE(caps.has(C::kHiddenVolume)) << s;
    EXPECT_FALSE(caps.has(C::kMultiSnapshotSecure)) << s;
    EXPECT_FALSE(caps.has(C::kFastSwitch)) << s;
  }
  // The Table I comparison systems resist multi-snapshot adversaries but
  // expose no hidden volume in these reproductions.
  for (const char* s : {"defy", "hive"}) {
    const auto& entry = SchemeRegistry::entry(s);
    EXPECT_TRUE(entry.capabilities.has(C::kMultiSnapshotSecure)) << s;
    EXPECT_FALSE(entry.capabilities.has(C::kHiddenVolume)) << s;
    EXPECT_FALSE(entry.supports_attach) << s;
  }
  // Write-combining safety: the dm-crypt stacks advertise it, the
  // order-sensitive log/ORAM translators must not (their cache is demoted
  // to writethrough).
  for (const char* s : {"mobiceal", "android_fde", "mobipluto", "mobiflage"}) {
    EXPECT_TRUE(SchemeRegistry::entry(s).capabilities.has(
        C::kWritebackCacheSafe)) << s;
  }
  for (const char* s : {"defy", "hive"}) {
    EXPECT_FALSE(SchemeRegistry::entry(s).capabilities.has(
        C::kWritebackCacheSafe)) << s;
  }
}

TEST(SchemeRegistry, CapabilitiesToStringIsReadable) {
  EXPECT_EQ(SchemeRegistry::entry("android_fde").capabilities.to_string(),
            "writeback-cache-safe");
  EXPECT_EQ(SchemeRegistry::entry("mobipluto").capabilities.to_string(),
            "hidden-volume|writeback-cache-safe");
  EXPECT_EQ(SchemeRegistry::entry("defy").capabilities.to_string(),
            "multi-snapshot-secure");
  EXPECT_EQ(api::Capabilities{}.to_string(), "none");
  const auto mc = SchemeRegistry::entry("mobiceal").capabilities.to_string();
  EXPECT_NE(mc.find("fast-switch"), std::string::npos);
  EXPECT_NE(mc.find("dummy-writes"), std::string::npos);
}

TEST(SchemeRegistry, UnknownNameThrowsWithTheKnownList) {
  api::SchemeOptions opts;
  opts.device = std::make_shared<blockdev::MemBlockDevice>(4096);
  try {
    SchemeRegistry::create("steganofs", opts);
    FAIL() << "expected PolicyError";
  } catch (const util::PolicyError& e) {
    // The error message names the registered schemes.
    EXPECT_NE(std::string(e.what()).find("mobiceal"), std::string::npos);
  }
}

TEST(SchemeRegistry, NullDeviceIsRejectedBeforeTheFactoryRuns) {
  EXPECT_THROW(SchemeRegistry::create("mobiceal", api::SchemeOptions{}),
               util::PolicyError);
}

TEST(SchemeRegistry, DuplicateRegistrationThrows) {
  SchemeRegistry::Entry dup;
  dup.factory = [](const api::SchemeOptions&) {
    return std::unique_ptr<api::PdeScheme>();
  };
  EXPECT_THROW(SchemeRegistry::instance().add("mobiceal", std::move(dup)),
               util::PolicyError);
}

TEST(SchemeRegistry, CreatedSchemeReportsItsRegistryName) {
  for (const auto& name : SchemeRegistry::names()) {
    api::SchemeOptions opts;
    opts.device = std::make_shared<blockdev::MemBlockDevice>(16384);
    opts.public_password = "p";
    opts.hidden_passwords = {"h"};
    opts.kdf_iterations = 16;
    opts.fs_inode_count = 64;
    opts.num_volumes = 4;
    opts.chunk_blocks = 4;
    opts.zero_cpu_models = true;
    opts.skip_random_fill = true;
    auto scheme = SchemeRegistry::create(name, opts);
    EXPECT_EQ(scheme->name(), name);
    EXPECT_EQ(scheme->capabilities(),
              SchemeRegistry::entry(name).capabilities);
  }
}
