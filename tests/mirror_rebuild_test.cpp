// dm::MirrorTarget — RAID-1 fan-out/round-robin service, degraded-mode
// failover with repair-on-read, fail-closed writes when redundancy is
// exhausted, and the online rebuild: spare copy under foreground I/O,
// watermark checkpointing with idempotent crash replay, spare never read
// before promotion, and the full MobiCeal stack surviving a power loss
// mid-rebuild. The threaded foreground-vs-rebuild race runs under TSan in
// CI (ctest -R 'FaultInjector|Rebuild').
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/block_device.hpp"
#include "blockdev/fault_device.hpp"
#include "blockdev/fault_injector.hpp"
#include "core/mobiceal.hpp"
#include "dm/mirror_target.hpp"
#include "thin/thin_pool.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mobiceal {
namespace {

using blockdev::FaultInjectedDevice;
using blockdev::FaultInjector;
using blockdev::FaultPlan;
using blockdev::MemBlockDevice;
using blockdev::MemberDead;
using blockdev::PowerCut;
using blockdev::RecordingDevice;
using dm::MirrorTarget;

util::Bytes pattern(std::size_t n, std::uint8_t salt) {
  util::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(salt + i * 7 + (i >> 8) * 131);
  }
  return data;
}

/// Per-block content that depends only on the block index, so a racing
/// writer and rebuild copier must converge to the same image regardless of
/// interleaving.
util::Bytes block_content(std::uint64_t block, std::size_t bs) {
  return pattern(bs, static_cast<std::uint8_t>(block * 31 + 7));
}

int count_kind(const RecordingDevice& rec, blockdev::DeviceOp::Kind kind) {
  int n = 0;
  for (const auto& op : rec.ops()) {
    if (op.kind == kind) ++n;
  }
  return n;
}

// ---- healthy-array service --------------------------------------------------

TEST(MirrorTest, WritesFanOutAndReadsRoundRobin) {
  auto mem0 = std::make_shared<MemBlockDevice>(64);
  auto mem1 = std::make_shared<MemBlockDevice>(64);
  auto rec0 = std::make_shared<RecordingDevice>(mem0);
  auto rec1 = std::make_shared<RecordingDevice>(mem1);
  MirrorTarget mirror({rec0, rec1});

  const auto data = pattern(4 * mirror.block_size(), 1);
  mirror.write_blocks(8, data);
  // Every member carries every write (that is the redundancy).
  EXPECT_EQ(mem0->snapshot(), mem1->snapshot());
  EXPECT_EQ(count_kind(*rec0, blockdev::DeviceOp::Kind::kWrite), 4);
  EXPECT_EQ(count_kind(*rec1, blockdev::DeviceOp::Kind::kWrite), 4);

  // Reads round-robin across in-sync members: two reads, one per leg.
  util::Bytes buf(mirror.block_size());
  mirror.read_block(8, buf);
  mirror.read_block(8, buf);
  EXPECT_EQ(count_kind(*rec0, blockdev::DeviceOp::Kind::kRead), 1);
  EXPECT_EQ(count_kind(*rec1, blockdev::DeviceOp::Kind::kRead), 1);
  EXPECT_EQ(buf, util::Bytes(data.begin(),
                             data.begin() + mirror.block_size()));
}

TEST(MirrorTest, MismatchedMemberGeometryIsRejected) {
  auto a = std::make_shared<MemBlockDevice>(64);
  auto b = std::make_shared<MemBlockDevice>(32);
  EXPECT_THROW(MirrorTarget({a, b}), util::PolicyError);
  EXPECT_THROW(MirrorTarget({}), util::PolicyError);
}

TEST(MirrorTest, ReadFaultFailsOverAndRepairsTheLatentSector) {
  FaultPlan plan;
  plan.latent_bad_blocks = {3};
  auto mem0 = std::make_shared<MemBlockDevice>(64);
  auto mem1 = std::make_shared<MemBlockDevice>(64);
  auto injector = std::make_shared<FaultInjector>(plan);
  auto mirror = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{
          mem0, std::make_shared<FaultInjectedDevice>(mem1, injector)});

  // The write heals nothing here: it lands before any read discovers the
  // sector, and healing only fires for blocks the plan marked latent —
  // so re-seed the latent sector by writing around it.
  const auto data = block_content(3, mirror->block_size());
  mirror->write_block(3, data);
  ASSERT_EQ(injector->latent_bad_count(), 0u);  // fan-out write healed it

  // Re-arm: a fresh injector on the same member keeps the member data.
  plan.latent_bad_blocks = {7};
  auto injector2 = std::make_shared<FaultInjector>(plan);
  auto mirror2 = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{
          mem0, std::make_shared<FaultInjectedDevice>(mem1, injector2)});
  const auto d7 = block_content(7, mirror2->block_size());
  mem0->write_block(7, d7);
  mem1->write_block(7, d7);

  util::Bytes buf(mirror2->block_size());
  mirror2->read_block(7, buf);  // round-robin: member 0, clean
  EXPECT_EQ(mirror2->failovers(), 0u);
  mirror2->read_block(7, buf);  // member 1: ReadFault -> failover + repair
  EXPECT_EQ(buf, d7);
  EXPECT_EQ(mirror2->failovers(), 1u);
  EXPECT_EQ(mirror2->repaired_ranges(), 1u);
  EXPECT_EQ(injector2->healed_blocks(), 1u);
  EXPECT_EQ(injector2->latent_bad_count(), 0u);
  // The faulted member stayed in the array (transient faults don't kick).
  EXPECT_EQ(mirror2->live_members(), 2u);
  // And now serves the repaired sector itself.
  mirror2->read_block(7, buf);  // member 0
  mirror2->read_block(7, buf);  // member 1, healed
  EXPECT_EQ(mirror2->failovers(), 1u);
}

TEST(MirrorTest, DeadMemberIsKickedAndWritesFailClosedWhenNoneRemain) {
  FaultPlan doa;
  doa.drop_after_requests = 0;
  auto mem0 = std::make_shared<MemBlockDevice>(64);
  auto mem1 = std::make_shared<MemBlockDevice>(64);
  auto mirror = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{
          mem0, std::make_shared<FaultInjectedDevice>(
                    mem1, std::make_shared<FaultInjector>(doa))});

  // The first write discovers the dead member and kicks it; the write
  // itself is still durable on the surviving leg.
  const auto data = pattern(mirror->block_size(), 9);
  EXPECT_NO_THROW(mirror->write_block(0, data));
  EXPECT_TRUE(mirror->degraded());
  EXPECT_EQ(mirror->live_members(), 1u);
  util::Bytes buf(mirror->block_size());
  mirror->read_block(0, buf);  // degraded read: surviving member serves
  EXPECT_EQ(buf, data);

  // Redundancy exhausted: writes and reads fail closed, and no data moves.
  mirror->fail_member(0);
  EXPECT_EQ(mirror->live_members(), 0u);
  const auto before = mem0->snapshot();
  EXPECT_THROW(mirror->write_block(1, data), util::IoError);
  EXPECT_THROW(mirror->read_block(0, buf), util::IoError);
  EXPECT_THROW(mirror->flush(), util::IoError);
  EXPECT_EQ(mem0->snapshot(), before);
}

TEST(MirrorTest, FlushIsDurableIfAnyMemberCompletesTheBarrier) {
  FaultPlan cut;
  cut.power_cut_at_flush = 1;
  auto mem0 = std::make_shared<MemBlockDevice>(64);
  auto mem1 = std::make_shared<MemBlockDevice>(64);
  auto mirror = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{
          std::make_shared<FaultInjectedDevice>(
              mem0, std::make_shared<FaultInjector>(cut)),
          mem1});

  mirror->write_block(0, pattern(mirror->block_size(), 2));
  // Member 0 dies at its barrier; member 1 carried it, so the flush is
  // durable and only the failed member is kicked.
  EXPECT_NO_THROW(mirror->flush());
  EXPECT_EQ(mirror->live_members(), 1u);

  // With no redundancy left, a failed barrier surfaces.
  FaultPlan cut1;
  cut1.power_cut_at_flush = 1;
  auto solo = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{
          std::make_shared<FaultInjectedDevice>(
              std::make_shared<MemBlockDevice>(64),
              std::make_shared<FaultInjector>(cut1))});
  EXPECT_THROW(solo->flush(), PowerCut);
}

// ---- online rebuild ---------------------------------------------------------

struct RebuildRig {
  std::shared_ptr<MemBlockDevice> mem0;
  std::shared_ptr<MemBlockDevice> mem1;
  std::shared_ptr<MirrorTarget> mirror;

  explicit RebuildRig(std::uint64_t blocks = 256) {
    mem0 = std::make_shared<MemBlockDevice>(blocks);
    mem1 = std::make_shared<MemBlockDevice>(blocks);
    mirror = std::make_shared<MirrorTarget>(
        std::vector<std::shared_ptr<blockdev::BlockDevice>>{mem0, mem1});
    for (std::uint64_t b = 0; b < blocks; b += 16) {
      mirror->write_blocks(
          b, pattern(16 * mirror->block_size(),
                     static_cast<std::uint8_t>(b)));
    }
  }
};

TEST(RebuildTest, OnlineRebuildCopiesPromotesAndServesReads) {
  RebuildRig rig;
  rig.mirror->fail_member(1);
  ASSERT_TRUE(rig.mirror->degraded());

  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(spare_mem);
  EXPECT_TRUE(rig.mirror->rebuilding());
  std::uint64_t steps = 0;
  while (rig.mirror->rebuilding()) {
    EXPECT_GT(rig.mirror->rebuild_step(32), 0u);
    ++steps;
  }
  EXPECT_EQ(steps, 256u / 32u);
  EXPECT_EQ(rig.mirror->rebuilt_blocks(), 256u);
  EXPECT_EQ(rig.mirror->rebuilds_completed(), 1u);
  EXPECT_EQ(spare_mem->snapshot(), rig.mem0->snapshot());
  // The promoted spare is a full member: redundancy is restored (the dead
  // leg stays on the roster, so member_count is 3 with 2 live).
  EXPECT_EQ(rig.mirror->live_members(), 2u);
  EXPECT_EQ(rig.mirror->member_count(), 3u);

  // A second rebuild can start only after the first completes — attaching
  // while one is in flight is a policy error.
  auto spare2 = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(spare2);
  EXPECT_THROW(rig.mirror->attach_spare(spare2), util::PolicyError);
}

TEST(RebuildTest, ForegroundWritesPropagateOnlyBelowTheWatermark) {
  RebuildRig rig;
  rig.mirror->fail_member(1);
  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(spare_mem);
  ASSERT_EQ(rig.mirror->rebuild_step(128), 128u);
  ASSERT_EQ(rig.mirror->rebuild_watermark(), 128u);

  const std::size_t bs = rig.mirror->block_size();
  const auto lo = block_content(10, bs);
  const auto hi = block_content(200, bs);
  rig.mirror->write_block(10, lo);   // below: lands on the spare too
  rig.mirror->write_block(200, hi);  // above: the copy will carry it later
  util::Bytes got(bs);
  spare_mem->read_block(10, got);
  EXPECT_EQ(got, lo);
  spare_mem->read_block(200, got);
  EXPECT_NE(got, hi);  // not yet copied, foreground write not propagated

  while (rig.mirror->rebuilding()) rig.mirror->rebuild_step(64);
  EXPECT_EQ(spare_mem->snapshot(), rig.mem0->snapshot());
}

TEST(RebuildTest, CheckpointReplayAfterCrashIsIdempotent) {
  RebuildRig rig;
  rig.mirror->fail_member(1);
  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(spare_mem);
  rig.mirror->rebuild_step(96);
  rig.mirror->write_block(5, block_content(5, rig.mirror->block_size()));
  const std::uint64_t true_progress = rig.mirror->rebuild_watermark();
  ASSERT_EQ(true_progress, 96u);
  // The crash: the array object vanishes; the images (members, spare) and
  // a LAGGED checkpoint — persisted less often than the copy advances —
  // survive.
  const std::uint64_t checkpoint = true_progress - 64;
  rig.mirror.reset();

  auto replay = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{rig.mem0});
  replay->attach_spare(spare_mem, checkpoint);
  EXPECT_EQ(replay->rebuild_watermark(), checkpoint);
  // Foreground life resumes mid-replay; the re-copy of [checkpoint,
  // true_progress) is idempotent.
  replay->write_block(2, block_content(2, replay->block_size()));
  while (replay->rebuilding()) replay->rebuild_step(32);
  EXPECT_EQ(replay->rebuilds_completed(), 1u);
  EXPECT_EQ(spare_mem->snapshot(), rig.mem0->snapshot());
}

TEST(RebuildTest, SpareIsNeverReadBeforePromotion) {
  RebuildRig rig;
  rig.mirror->fail_member(1);
  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  auto spare_rec = std::make_shared<RecordingDevice>(spare_mem);
  rig.mirror->attach_spare(spare_rec);
  rig.mirror->rebuild_step(128);

  // Plenty of reads across the whole device, below and above the
  // watermark: an unpromoted spare must serve none of them (its content
  // is torn by definition until the copy completes).
  util::Bytes buf(rig.mirror->block_size());
  for (std::uint64_t b = 0; b < 256; b += 8) rig.mirror->read_block(b, buf);
  EXPECT_EQ(count_kind(*spare_rec, blockdev::DeviceOp::Kind::kRead), 0);

  while (rig.mirror->rebuilding()) rig.mirror->rebuild_step(64);
  // After promotion the spare joins the round-robin read set.
  rig.mirror->read_block(0, buf);
  rig.mirror->read_block(0, buf);
  EXPECT_GT(count_kind(*spare_rec, blockdev::DeviceOp::Kind::kRead), 0);
}

TEST(RebuildTest, SpareWriteFailureAbortsTheRebuild) {
  RebuildRig rig;
  FaultPlan doa;
  doa.drop_after_requests = 1;  // first copy write succeeds, second kills
  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(std::make_shared<FaultInjectedDevice>(
      spare_mem, std::make_shared<FaultInjector>(doa)));
  ASSERT_EQ(rig.mirror->rebuild_step(32), 32u);
  EXPECT_THROW(rig.mirror->rebuild_step(32), MemberDead);
  // The rebuild is aborted — watermark reset, spare detached — and the
  // array keeps serving I/O (a failed spare never costs redundancy).
  EXPECT_FALSE(rig.mirror->rebuilding());
  EXPECT_EQ(rig.mirror->rebuild_watermark(), 0u);
  EXPECT_EQ(rig.mirror->rebuild_step(32), 0u);
  util::Bytes buf(rig.mirror->block_size());
  EXPECT_NO_THROW(rig.mirror->read_block(0, buf));
  EXPECT_NO_THROW(rig.mirror->write_block(0, buf));
  EXPECT_EQ(rig.mirror->live_members(), 2u);
}

TEST(RebuildTest, ThreadedForegroundWritesRaceTheRebuildSafely) {
  // The TSan target: a real foreground writer thread races the rebuild
  // driver. Content is a pure function of the block index, so any
  // interleaving must converge to spare == canonical member.
  RebuildRig rig;
  rig.mirror->fail_member(1);
  auto spare_mem = std::make_shared<MemBlockDevice>(256);
  rig.mirror->attach_spare(spare_mem);
  const std::size_t bs = rig.mirror->block_size();

  std::thread writer([&] {
    for (int pass = 0; pass < 4; ++pass) {
      for (std::uint64_t b = pass % 2; b < 256; b += 2) {
        rig.mirror->write_block(b, block_content(b, bs));
      }
    }
  });
  std::thread rebuilder([&] {
    while (rig.mirror->rebuilding()) rig.mirror->rebuild_step(8);
  });
  writer.join();
  rebuilder.join();

  EXPECT_EQ(rig.mirror->rebuilds_completed(), 1u);
  EXPECT_EQ(spare_mem->snapshot(), rig.mem0->snapshot());
}

TEST(RebuildTest, MobiCealStackSurvivesPowerLossMidRebuild) {
  // Full stack over a degraded mirror: power loss while the spare is half
  // rebuilt. Replay re-attaches the device from its footer AND resumes the
  // copy from a lagged checkpoint; committed data survives and the
  // finished spare is bit-identical to the canonical member.
  auto leg0 = std::make_shared<MemBlockDevice>(16384);
  auto leg1 = std::make_shared<MemBlockDevice>(16384);
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 4;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 16;
  cfg.fs_inode_count = 128;
  cfg.thin_cpu = thin::ThinCpuModel::zero();
  const auto saved = pattern(60000, 11);
  auto spare_mem = std::make_shared<MemBlockDevice>(16384);
  std::uint64_t checkpoint = 0;
  {
    auto mirror = std::make_shared<MirrorTarget>(
        std::vector<std::shared_ptr<blockdev::BlockDevice>>{leg0, leg1});
    auto dev = core::MobiCealDevice::initialize(mirror, cfg, "pub", {"hid"});
    dev->boot("pub");
    dev->data_fs().write_file("/durable.bin", saved);
    dev->data_fs().sync();  // commit point
    mirror->fail_member(1);  // leg 1 dies; array degraded
    mirror->attach_spare(spare_mem);
    while (mirror->rebuild_watermark() < 8192) {
      mirror->rebuild_step(512);
      dev->data_fs().write_file("/churn.bin", pattern(20000, 12));
    }
    // The checkpoint the rebuild driver last persisted lags the true copy
    // progress — replay from it must still converge.
    checkpoint = mirror->rebuild_watermark() - 1024;
    dev->data_fs().write_file("/lost.bin", pattern(30000, 13));
    // Power loss: no sync, no reboot; every in-RAM object vanishes.
  }

  auto mirror = std::make_shared<MirrorTarget>(
      std::vector<std::shared_ptr<blockdev::BlockDevice>>{leg0});
  mirror->attach_spare(spare_mem, checkpoint);
  auto dev = core::MobiCealDevice::attach(mirror, cfg);
  ASSERT_EQ(dev->boot("pub"), core::AuthResult::kPublic);
  EXPECT_EQ(dev->data_fs().read_file("/durable.bin"), saved);
  while (mirror->rebuilding()) {
    mirror->rebuild_step(512);
  }
  EXPECT_EQ(mirror->rebuilds_completed(), 1u);
  dev->data_fs().sync();
  EXPECT_EQ(spare_mem->snapshot(), leg0->snapshot());
}

}  // namespace
}  // namespace mobiceal
