// cache::CacheTarget — read-through fill, LRU eviction, writeback
// coalescing/ordering, and the deniability-parity contract: with the cache
// on, the flushed device state is bit-identical to the uncached stack for
// every registered scheme (noise writes included).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/timed_device.hpp"
#include "cache/cache_target.hpp"
#include "fs/run_coalescer.hpp"
#include "thin/thin_pool.hpp"
#include "util/error.hpp"

namespace mobiceal {
namespace {

using blockdev::kDefaultBlockSize;

/// Records every lower-device write (sync or submitted) as a (first, count)
/// run, in arrival order.
class RecordingDevice final : public blockdev::BlockDevice {
 public:
  explicit RecordingDevice(std::shared_ptr<blockdev::BlockDevice> inner)
      : inner_(std::move(inner)) {}

  std::size_t block_size() const noexcept override {
    return inner_->block_size();
  }
  std::uint64_t num_blocks() const noexcept override {
    return inner_->num_blocks();
  }
  void read_block(std::uint64_t index, util::MutByteSpan out) override {
    ++read_blocks_;
    inner_->read_block(index, out);
  }
  void write_block(std::uint64_t index, util::ByteSpan data) override {
    write_runs.emplace_back(index, 1);
    inner_->write_block(index, data);
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> write_runs;
  std::uint64_t read_blocks() const noexcept { return read_blocks_; }

 protected:
  void do_read_blocks(std::uint64_t first, std::uint64_t count,
                      util::MutByteSpan out) override {
    read_blocks_ += count;
    inner_->read_blocks(first, count, out);
  }
  void do_write_blocks(std::uint64_t first, util::ByteSpan data) override {
    write_runs.emplace_back(first, data.size() / block_size());
    inner_->write_blocks(first, data);
  }
  std::uint64_t do_submit(const blockdev::IoRequest& req) override {
    if (req.op == blockdev::IoOp::kWrite) {
      write_runs.emplace_back(req.first, req.count);
    } else if (req.op == blockdev::IoOp::kRead) {
      read_blocks_ += req.count;
    }
    return inner_->submit(req).complete_ns;
  }
  void do_drain() override { inner_->drain(); }

 private:
  std::shared_ptr<blockdev::BlockDevice> inner_;
  std::uint64_t read_blocks_ = 0;
};

util::Bytes pattern_block(std::uint8_t tag) {
  util::Bytes b(kDefaultBlockSize, tag);
  return b;
}

struct CacheRig {
  std::shared_ptr<blockdev::MemBlockDevice> mem;
  std::shared_ptr<RecordingDevice> rec;
  std::shared_ptr<cache::CacheTarget> cache;
};

CacheRig make_rig(std::uint64_t capacity, cache::WritePolicy policy,
                  std::uint64_t device_blocks = 256) {
  CacheRig r;
  r.mem = std::make_shared<blockdev::MemBlockDevice>(device_blocks);
  r.rec = std::make_shared<RecordingDevice>(r.mem);
  cache::CacheConfig cfg;
  cfg.capacity_blocks = capacity;
  cfg.policy = policy;
  r.cache = std::make_shared<cache::CacheTarget>(r.rec, cfg);
  return r;
}

TEST(CacheTarget, ZeroCapacityIsRejectedButWrapBypasses) {
  auto mem = std::make_shared<blockdev::MemBlockDevice>(16);
  EXPECT_THROW(cache::CacheTarget(mem, cache::CacheConfig{}),
               util::PolicyError);
  EXPECT_EQ(cache::wrap(mem, cache::CacheConfig{}).get(), mem.get());
  cache::CacheConfig on;
  on.capacity_blocks = 4;
  EXPECT_NE(cache::wrap(mem, on).get(), mem.get());
}

TEST(CacheTarget, ReadThroughFillsAndServesRepeatsFromRam) {
  CacheRig r = make_rig(32, cache::WritePolicy::kWriteback);
  for (std::uint64_t b = 0; b < 8; ++b) {
    r.mem->write_block(b, pattern_block(static_cast<std::uint8_t>(b + 1)));
  }

  util::Bytes out(8 * kDefaultBlockSize);
  r.cache->read_blocks(0, 8, out);
  EXPECT_EQ(r.rec->read_blocks(), 8u);
  EXPECT_EQ(r.cache->counters().misses, 8u);
  EXPECT_EQ(r.cache->counters().fill_reads, 1u);  // one contiguous run

  // Re-read: served from RAM, no further lower I/O.
  util::Bytes again(8 * kDefaultBlockSize);
  r.cache->read_blocks(0, 8, again);
  EXPECT_EQ(out, again);
  EXPECT_EQ(r.rec->read_blocks(), 8u);
  EXPECT_EQ(r.cache->counters().hits, 8u);
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(again[b * kDefaultBlockSize], b + 1);
  }
}

TEST(CacheTarget, PartialHitFetchesOnlyTheMissingRuns) {
  CacheRig r = make_rig(32, cache::WritePolicy::kWriteback);
  util::Bytes one(kDefaultBlockSize);
  r.cache->read_block(2, one);  // cache block 2
  ASSERT_EQ(r.rec->read_blocks(), 1u);

  // [0..5): misses {0,1} and {3,4} around the hit on 2 -> two fill runs.
  util::Bytes out(5 * kDefaultBlockSize);
  r.cache->read_blocks(0, 5, out);
  EXPECT_EQ(r.rec->read_blocks(), 5u);  // 1 + 4 missing blocks
  EXPECT_EQ(r.cache->counters().fill_reads, 3u);  // first + two runs
}

TEST(CacheTarget, LruEvictionDropsTheColdestBlock) {
  CacheRig r = make_rig(4, cache::WritePolicy::kWriteback);
  util::Bytes b(kDefaultBlockSize);
  for (std::uint64_t i = 0; i < 4; ++i) r.cache->read_block(i, b);
  r.cache->read_block(0, b);  // 0 becomes MRU; 1 is now coldest
  r.cache->read_block(9, b);  // forces one eviction
  EXPECT_EQ(r.cache->counters().evictions, 1u);

  const std::uint64_t before = r.rec->read_blocks();
  r.cache->read_block(0, b);  // still cached
  EXPECT_EQ(r.rec->read_blocks(), before);
  r.cache->read_block(1, b);  // evicted: must re-fetch
  EXPECT_EQ(r.rec->read_blocks(), before + 1);
}

TEST(CacheTarget, WritebackAbsorbsWritesUntilFlush) {
  CacheRig r = make_rig(32, cache::WritePolicy::kWriteback);
  r.cache->write_block(5, pattern_block(0xAA));
  r.cache->write_block(6, pattern_block(0xBB));
  EXPECT_TRUE(r.rec->write_runs.empty());
  EXPECT_EQ(r.cache->dirty_blocks(), 2u);

  // Reads of dirty blocks hit the cache (no stale lower data).
  util::Bytes out(kDefaultBlockSize);
  r.cache->read_block(5, out);
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(r.mem->raw()[5 * kDefaultBlockSize], 0x00);  // not yet below

  r.cache->flush();
  EXPECT_EQ(r.cache->dirty_blocks(), 0u);
  ASSERT_EQ(r.rec->write_runs.size(), 1u);  // 5 and 6 coalesced
  EXPECT_EQ(r.rec->write_runs[0], std::make_pair(std::uint64_t{5},
                                                 std::uint64_t{2}));
  EXPECT_EQ(r.mem->raw()[5 * kDefaultBlockSize], 0xAA);
  EXPECT_EQ(r.mem->raw()[6 * kDefaultBlockSize], 0xBB);
}

TEST(CacheTarget, WritebackRunsMatchRunCoalescerOnTheFirstDirtyOrder) {
  CacheRig r = make_rig(64, cache::WritePolicy::kWriteback);
  // Scattered first-dirty sequence: 10,11,12, 40, 13, 5,6, plus a rewrite
  // of 11 (already dirty: must NOT move in the replay order).
  const std::vector<std::uint64_t> sequence = {10, 11, 12, 40, 13, 5, 6};
  for (const std::uint64_t blk : sequence) {
    r.cache->write_block(blk, pattern_block(static_cast<std::uint8_t>(blk)));
  }
  r.cache->write_block(11, pattern_block(0xEE));
  r.cache->flush();

  // Reference: the exact runs fs::RunCoalescer emits for that sequence.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  fs::RunCoalescer runs(kDefaultBlockSize,
                        [&](std::uint64_t first, std::uint64_t count,
                            std::size_t) {
                          expected.emplace_back(first, count);
                        });
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    runs.push(sequence[i], i * kDefaultBlockSize);
  }
  runs.flush();

  EXPECT_EQ(r.rec->write_runs, expected);
  EXPECT_EQ(r.cache->counters().writeback_runs, expected.size());
  // The rewrite's content (not its position) is what lands.
  EXPECT_EQ(r.mem->raw()[11 * kDefaultBlockSize], 0xEE);
}

TEST(CacheTarget, DirtyEvictionFlushesTheWholeSetInFirstDirtyOrder) {
  CacheRig r = make_rig(4, cache::WritePolicy::kWriteback);
  for (const std::uint64_t blk : {7, 3, 9, 1}) {
    r.cache->write_block(blk, pattern_block(static_cast<std::uint8_t>(blk)));
  }
  ASSERT_TRUE(r.rec->write_runs.empty());
  // Fifth distinct block: LRU victim (7) is dirty, so the whole dirty set
  // flushes as one epoch — in first-dirty order, not LRU or address order.
  r.cache->write_block(2, pattern_block(2));
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {7, 1}, {3, 1}, {9, 1}, {1, 1}};
  EXPECT_EQ(r.rec->write_runs, expected);
  EXPECT_EQ(r.cache->counters().epochs, 1u);
  EXPECT_EQ(r.cache->dirty_blocks(), 1u);  // just the new block 2
}

TEST(CacheTarget, WritethroughPreservesTheExactLowerWriteSequence) {
  CacheRig r = make_rig(16, cache::WritePolicy::kWritethrough);
  r.cache->write_block(4, pattern_block(1));
  util::Bytes two(2 * kDefaultBlockSize, 2);
  r.cache->write_blocks(8, two);
  r.cache->write_block(4, pattern_block(3));  // rewrite passes through too
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {4, 1}, {8, 2}, {4, 1}};
  EXPECT_EQ(r.rec->write_runs, expected);
  EXPECT_EQ(r.cache->dirty_blocks(), 0u);

  // And re-reads of written-then-read blocks still fill + hit.
  util::Bytes out(kDefaultBlockSize);
  r.cache->read_block(8, out);
  const std::uint64_t fetched = r.rec->read_blocks();
  r.cache->read_block(8, out);
  EXPECT_EQ(r.rec->read_blocks(), fetched);
}

TEST(CacheTarget, DrainFlushesDirtyBlocksThroughTheAsyncEngine) {
  // Timed lower device at queue depth 4: the coalesced flush runs ride
  // submit() and the drain barrier completes them all.
  auto clock = std::make_shared<util::SimClock>();
  auto mem = std::make_shared<blockdev::MemBlockDevice>(256);
  auto timed = std::make_shared<blockdev::TimedDevice>(
      mem, blockdev::TimingModel::nexus4_emmc(), clock);
  timed->set_queue_depth(4);
  cache::CacheConfig cfg;
  cfg.capacity_blocks = 64;
  auto ct = std::make_shared<cache::CacheTarget>(timed, cfg, clock);

  for (const std::uint64_t blk : {10, 11, 30, 31, 50, 51}) {
    ct->write_block(blk, pattern_block(static_cast<std::uint8_t>(blk)));
  }
  EXPECT_EQ(timed->async_ios(), 0u);
  ct->drain();
  EXPECT_EQ(ct->dirty_blocks(), 0u);
  EXPECT_EQ(timed->async_ios(), 3u);  // three coalesced runs submitted
  for (const std::uint64_t blk : {10, 11, 30, 31, 50, 51}) {
    EXPECT_EQ(mem->raw()[blk * kDefaultBlockSize],
              static_cast<std::uint8_t>(blk));
  }
}

TEST(CacheTarget, FlushOnDrainOrderingUnderFragmentedExtents) {
  // Cache over a randomly-allocated thin volume: logically contiguous dirty
  // runs fragment into scattered physical chunks below the cache. Flush via
  // drain() must still land every block correctly.
  auto meta = std::make_shared<blockdev::MemBlockDevice>(512);
  auto data = std::make_shared<blockdev::MemBlockDevice>(2048);
  thin::ThinPool::Config pc;
  pc.chunk_blocks = 4;
  pc.max_volumes = 2;
  pc.policy = thin::AllocPolicy::kRandom;
  auto pool = thin::ThinPool::format(meta, data, pc);
  util::Xoshiro256 rng(7);
  pool->set_alloc_rng(&rng);
  pool->create_thin(0, pool->nr_chunks());
  auto vol = pool->open_thin(0);

  cache::CacheConfig cfg;
  cfg.capacity_blocks = 128;
  auto ct = std::make_shared<cache::CacheTarget>(vol, cfg);
  util::Bytes payload(40 * kDefaultBlockSize);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 / kDefaultBlockSize);
  }
  ct->write_blocks(3, payload);
  EXPECT_EQ(ct->dirty_blocks(), 40u);
  ct->drain();
  EXPECT_EQ(ct->dirty_blocks(), 0u);

  // Read back through the *volume* (below the cache): the fragmented
  // physical layout holds exactly the payload.
  util::Bytes back(payload.size());
  vol->read_blocks(3, 40, back);
  EXPECT_EQ(back, payload);
}

// ---- deniability parity across every registered scheme -------------------------

util::Bytes file_payload(std::size_t n, std::uint8_t salt) {
  util::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(salt + i * 7);
  }
  return data;
}

/// Runs the same fs workload (writes, rewrites, re-reads, metadata churn)
/// against a freshly initialised scheme and returns the final device image
/// after reboot() (sync + cache flush + unmount).
util::Bytes scheme_final_image(const std::string& name,
                               std::uint64_t cache_blocks) {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(24576);  // 96 MiB
  api::SchemeOptions opts;
  opts.device = disk;
  opts.public_password = "pub";
  if (api::SchemeRegistry::entry(name).capabilities.has(
          api::Capability::kHiddenVolume)) {
    opts.hidden_passwords = {"hid"};
  }
  opts.rng_seed = 99;
  opts.skip_random_fill = true;
  opts.stack.cache_blocks = cache_blocks;
  opts.stack.cache_writeback = true;  // demoted per scheme capability

  auto scheme = api::SchemeRegistry::create(name, opts);
  EXPECT_TRUE(scheme->unlock("pub").ok) << name;
  auto& fs = scheme->data_fs();

  fs.mkdir("/d");
  fs.write_file("/d/a.bin", file_payload(300 * 1024, 1));
  fs.write_file("/b.bin", file_payload(90 * 1024, 2));
  // Rewrite part of an existing file (write combining on safe schemes).
  fs.write("/d/a.bin", 64 * 1024, file_payload(32 * 1024, 3));
  // Metadata churn + re-reads (cache hits on the second pass).
  for (int i = 0; i < 8; ++i) {
    fs.write_file("/d/small" + std::to_string(i) + ".bin",
                  file_payload(4096, static_cast<std::uint8_t>(i)));
  }
  fs.unlink("/d/small3.bin");
  (void)fs.read_file("/d/a.bin");
  (void)fs.read_file("/d/a.bin");
  scheme->reboot();
  return disk->snapshot();
}

class CacheParity : public ::testing::TestWithParam<std::string> {};

TEST_P(CacheParity, CachedFinalStateBitIdenticalToUncached) {
  const std::string scheme = GetParam();
  const util::Bytes uncached = scheme_final_image(scheme, 0);
  const util::Bytes cached = scheme_final_image(scheme, 512);
  ASSERT_EQ(uncached.size(), cached.size());
  EXPECT_TRUE(uncached == cached)
      << scheme << ": cache perturbed the on-flash state";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CacheParity,
    ::testing::ValuesIn(api::SchemeRegistry::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(CacheParity, MobiCealHiddenModeWithNoiseWritesStaysBitIdentical) {
  // Hidden-volume workload with dummy writes live (lambda high so bursts
  // definitely fire): noise rides below the cache, parity must hold.
  auto run = [](std::uint64_t cache_blocks) {
    auto disk = std::make_shared<blockdev::MemBlockDevice>(24576);
    api::SchemeOptions opts;
    opts.device = disk;
    opts.public_password = "pub";
    opts.hidden_passwords = {"hid"};
    opts.rng_seed = 1234;
    opts.lambda = 0.25;  // bigger bursts
    opts.stack.cache_blocks = cache_blocks;

    auto scheme = api::SchemeRegistry::create("mobiceal", opts);
    EXPECT_TRUE(scheme->unlock("pub").ok);
    scheme->data_fs().write_file("/decoy.bin", file_payload(200 * 1024, 9));
    EXPECT_TRUE(scheme->switch_volume("hid"));
    scheme->data_fs().write_file("/secret.bin", file_payload(150 * 1024, 4));
    scheme->data_fs().write("/secret.bin", 8192, file_payload(8192, 5));
    (void)scheme->data_fs().read_file("/secret.bin");
    scheme->reboot();
    return disk->snapshot();
  };
  EXPECT_TRUE(run(0) == run(512));
}

}  // namespace
}  // namespace mobiceal
