// Multi-level deniability (Sec. IV-C): one device, several hidden volumes,
// each protected by its own password, with k = (H(pwd||salt) mod (n-1)) + 2
// deciding where each one lives among the dummy volumes.
//
// The progressive-disclosure story: under escalating coercion the user can
// sacrifice a *less* sensitive hidden volume as a convincing confession,
// while the most sensitive volume remains deniable — every remaining
// non-public volume still looks like dummy noise.
#include <cstdio>

#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"

using namespace mobiceal;

int main() {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);

  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 8;  // V1 public, V2..V8 hidden or dummy
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 64;
  cfg.fs_inode_count = 128;

  const std::string decoy = "everyday-pw";
  const std::string level1 = "diary-pw";      // mildly sensitive
  const std::string level2 = "sources-pw";    // life-threatening

  std::printf("== initialising with 2 hidden volumes (n=%u) ==\n",
              cfg.num_volumes);
  auto dev = core::MobiCealDevice::initialize(disk, cfg, decoy,
                                              {level1, level2});
  std::printf("hidden volume indices: diary -> V%u, sources -> V%u "
              "(derived from the passwords; the rest of V2..V%u are dummy)\n",
              dev->hidden_index(level1), dev->hidden_index(level2),
              cfg.num_volumes);

  // Populate each level.
  dev->boot(decoy);
  dev->data_fs().write_file("/recipes.txt", util::bytes_of("lasagna"));
  dev->reboot();

  dev->boot(level1);
  dev->data_fs().write_file("/diary.txt",
                            util::bytes_of("I dislike my boss."));
  dev->reboot();

  dev->boot(level2);
  dev->data_fs().write_file("/sources.txt",
                            util::bytes_of("agent X meets at dawn"));
  dev->reboot();

  // Verify isolation between levels.
  dev->boot(level1);
  std::printf("\nlevel-1 volume sees /sources.txt? %s\n",
              dev->data_fs().exists("/sources.txt") ? "YES (bug!)" : "no");
  dev->reboot();

  // Escalating coercion.
  std::printf("\n== coercion, stage 1: user reveals only the decoy ==\n");
  dev->boot(decoy);
  std::printf("public volume lists %zu file(s); all other volumes are "
              "claimed (plausibly) to be dummy\n",
              dev->data_fs().list("/").size());
  dev->reboot();

  std::printf("\n== coercion, stage 2: pressure mounts — user sacrifices "
              "the diary password ==\n");
  dev->boot(level1);
  std::printf("adversary reads the 'confession': \"%s\"\n",
              util::string_of(dev->data_fs().read_file("/diary.txt"))
                  .c_str());
  std::printf("satisfied, the adversary stops: the remaining non-public "
              "volumes still look like dummy noise.\n");
  dev->reboot();

  std::printf("\n== the critical volume survives ==\n");
  dev->boot(level2);
  std::printf("/sources.txt = \"%s\"\n",
              util::string_of(dev->data_fs().read_file("/sources.txt"))
                  .c_str());
  return 0;
}
