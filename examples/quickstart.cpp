// Quickstart: the MobiCeal public API in ~60 lines.
//
//   1. Initialise a device with a decoy password and a hidden password
//      ("vdc cryptfs pde wipe" in the paper's prototype, Sec. V-B).
//   2. Boot with the decoy password -> public mode; store everyday data.
//   3. Fast-switch to hidden mode with the hidden password; store secrets.
//   4. Coercion: hand over the decoy password. The adversary sees a normal
//      encrypted phone; the hidden volume is indistinguishable from the
//      dummy volumes that absorb routine dummy-write traffic.
#include <cstdio>

#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"

using namespace mobiceal;

int main() {
  // A 64 MiB virtual userdata partition (any BlockDevice works:
  // RAM-backed, file-backed, or your own).
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);

  core::MobiCealDevice::Config config;
  config.num_volumes = 6;   // V1 public + 5 hidden/dummy volumes
  config.chunk_blocks = 4;  // 16 KiB thin chunks (demo-sized)
  config.kdf_iterations = 64;  // demo value; production uses 2000+
  config.fs_inode_count = 128;

  std::printf("== initialising MobiCeal (decoy + 1 hidden password) ==\n");
  auto device = core::MobiCealDevice::initialize(
      disk, config, "decoy-password", {"hidden-password"});

  // --- daily use: public mode ------------------------------------------------
  std::printf("booting with the decoy password... ");
  device->boot("decoy-password");
  std::printf("mode=public\n");
  device->data_fs().write_file("/shopping-list.txt",
                               util::bytes_of("milk, eggs, bread"));
  device->data_fs().write_file("/holiday.jpg", util::Bytes(30000, 0x7F));
  std::printf("stored 2 public files\n");

  // --- emergency: fast switch to hidden mode ----------------------------------
  std::printf("entering the hidden password at the screen lock... ");
  device->switch_to_hidden("hidden-password");
  std::printf("mode=hidden (no reboot needed)\n");
  device->data_fs().write_file("/sources.txt",
                               util::bytes_of("whistleblower contact info"));
  std::printf("stored 1 hidden file; rebooting back to public mode\n");
  device->reboot();

  // --- border checkpoint: coercion --------------------------------------------
  std::printf("\n== coercion: the user reveals ONLY the decoy password ==\n");
  device->boot("decoy-password");
  auto& fs = device->data_fs();
  std::printf("adversary mounts the public volume and lists /:\n");
  for (const auto& name : fs.list("/")) {
    std::printf("  /%s\n", name.c_str());
  }
  std::printf("hidden file visible? %s\n",
              fs.exists("/sources.txt") ? "YES (bug!)" : "no");
  std::printf(
      "non-public volumes on disk: %u (which hold dummy noise and/or hidden\n"
      "data — without the hidden password they cannot be told apart)\n",
      device->num_volumes() - 1);

  // --- and the data is really still there -------------------------------------
  device->reboot();
  device->boot("hidden-password");
  std::printf("\nre-entering hidden mode: /sources.txt = \"%s\"\n",
              util::string_of(device->data_fs().read_file("/sources.txt"))
                  .c_str());
  std::printf("\nquickstart OK\n");
  return 0;
}
