// Fast switching + side-channel isolation (Sec. IV-D, V-C): the usability
// feature that distinguishes MobiCeal from reboot-based PDEs.
//
// Scenario: an opportunistic moment to capture sensitive footage. With a
// reboot-based design the moment is gone (>60 s); MobiCeal switches through
// the screen-lock in under 10 s, isolates /cache and /devlog onto tmpfs, and
// the only way back is a RAM-clearing reboot.
#include <cstdio>

#include "adversary/side_channel.hpp"
#include "blockdev/block_device.hpp"
#include "core/android_host.hpp"

using namespace mobiceal;

int main() {
  auto disk = std::make_shared<blockdev::MemBlockDevice>(16384);
  auto clock = std::make_shared<util::SimClock>();

  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 64;
  cfg.fs_inode_count = 128;
  auto device = core::MobiCealDevice::initialize(disk, cfg, "decoy-pw",
                                                 {"hidden-pw"}, clock);

  core::AndroidHost::Options opt;
  opt.screen_lock_password = "1234";
  core::AndroidHost phone(std::move(device), clock, opt);

  std::printf("== phone boots into public mode ==\n");
  phone.power_on();
  phone.enter_boot_password("decoy-pw");
  phone.app_write_file("/note.txt", util::bytes_of("grocery run"));
  phone.lock_screen();

  // Normal unlock works as usual.
  phone.enter_lock_screen_password("1234");
  std::printf("normal screen unlock: OK (device stays in public mode)\n");
  phone.lock_screen();

  // The opportunistic moment.
  std::printf("\n== something worth documenting happens NOW ==\n");
  double t0 = clock->now_seconds();
  const auto result = phone.enter_lock_screen_password("hidden-pw");
  const double switch_s = clock->now_seconds() - t0;
  std::printf("entered the hidden password at the lock screen: %s in %.2f "
              "virtual seconds (reboot-based PDEs: >60 s)\n",
              result == core::AndroidHost::LockResult::kSwitchedToHidden
                  ? "switched to hidden mode"
                  : "FAILED",
              switch_s);

  phone.app_write_file("/footage.mp4", util::Bytes(50000, 0x3C));
  std::printf("captured /footage.mp4 in the hidden volume\n");

  // Done: one-way switch means a reboot to return.
  std::printf("\n== returning to public mode requires a reboot (clears "
              "RAM traces) ==\n");
  t0 = clock->now_seconds();
  phone.reboot();
  phone.enter_boot_password("decoy-pw");
  std::printf("back in public mode after %.1f virtual seconds\n",
              clock->now_seconds() - t0);

  // Audit: did the hidden session leak anywhere persistent?
  const auto report = adversary::audit_side_channels(phone);
  std::printf("\nside-channel audit of persistent /devlog + /cache: "
              "%zu hidden-session trace(s) %s\n",
              report.total(), report.leaked() ? "(LEAKED!)" : "— clean");
  std::printf("public log entries survive (as they should): %zu\n",
              phone.devlog_persistent().size());
  return 0;
}
