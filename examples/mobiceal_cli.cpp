// mobiceal_cli — operate MobiCeal device images from the command line.
//
// The closest equivalent of the paper's `vdc cryptfs pde ...` interface,
// working on ordinary files so you can poke at real on-disk state:
//
//   mobiceal_cli init <image> <size_mb> <pub_pwd> [hidden_pwd...]
//   mobiceal_cli ls <image> <pwd> [dir]
//   mobiceal_cli put <image> <pwd> <path> <text>
//   mobiceal_cli get <image> <pwd> <path>
//   mobiceal_cli rm <image> <pwd> <path>
//   mobiceal_cli gc <image> <hidden_pwd> [protected_pwd...]
//   mobiceal_cli info <image>                  (adversary's metadata view)
//   mobiceal_cli snapshot <image> <out_file>
//   mobiceal_cli analyze <image> <old_snapshot>  (multi-snapshot attacks)
//
// `pwd` may be the decoy password (public volume) or any hidden password.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"
#include "util/error.hpp"

using namespace mobiceal;

namespace {

core::MobiCealDevice::Config cli_config() {
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 8;
  cfg.chunk_blocks = 4;  // 16 KiB chunks keep small images usable
  cfg.kdf_iterations = 2000;
  cfg.fs_inode_count = 512;
  return cfg;
}

std::uint64_t image_blocks(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw util::IoError("cannot open image: " + path);
  return static_cast<std::uint64_t>(in.tellg()) / 4096;
}

std::unique_ptr<core::MobiCealDevice> attach(const std::string& image) {
  auto dev = std::make_shared<blockdev::FileBlockDevice>(
      image, image_blocks(image));
  return core::MobiCealDevice::attach(dev, cli_config());
}

std::unique_ptr<core::MobiCealDevice> attach_and_boot(
    const std::string& image, const std::string& pwd) {
  auto dev = attach(image);
  const auto result = dev->boot(pwd);
  if (result == core::AuthResult::kWrongPassword) {
    throw util::PolicyError("password does not unlock any volume");
  }
  std::fprintf(stderr, "[booted: %s mode]\n",
               result == core::AuthResult::kPublic ? "public" : "hidden");
  return dev;
}

int usage() {
  std::fprintf(stderr,
               "usage: mobiceal_cli "
               "init|ls|put|get|rm|gc|info|snapshot|analyze ...\n"
               "see the header of examples/mobiceal_cli.cpp\n");
  return 2;
}

int cmd_init(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string image = argv[2];
  const std::uint64_t mb = std::strtoull(argv[3], nullptr, 10);
  const std::string pub = argv[4];
  std::vector<std::string> hidden;
  for (int i = 5; i < argc; ++i) hidden.emplace_back(argv[i]);
  if (mb < 8) {
    std::fprintf(stderr, "image must be at least 8 MB\n");
    return 1;
  }
  auto dev = std::make_shared<blockdev::FileBlockDevice>(image, mb << 8);
  auto mc = core::MobiCealDevice::initialize(dev, cli_config(), pub, hidden);
  std::printf("initialised %s: %llu MB, %u volumes (%zu hidden)\n",
              image.c_str(), static_cast<unsigned long long>(mb),
              mc->num_volumes(), hidden.size());
  return 0;
}

int cmd_ls(int argc, char** argv) {
  if (argc < 4) return usage();
  auto mc = attach_and_boot(argv[2], argv[3]);
  const std::string dir = argc > 4 ? argv[4] : "/";
  for (const auto& name : mc->data_fs().list(dir)) {
    const std::string full = dir == "/" ? "/" + name : dir + "/" + name;
    const auto info = mc->data_fs().stat(full);
    std::printf("%10llu  %s%s\n",
                static_cast<unsigned long long>(info.size), full.c_str(),
                info.is_dir ? "/" : "");
  }
  mc->reboot();
  return 0;
}

int cmd_put(int argc, char** argv) {
  if (argc < 6) return usage();
  auto mc = attach_and_boot(argv[2], argv[3]);
  mc->data_fs().write_file(argv[4], util::bytes_of(argv[5]));
  mc->data_fs().sync();
  mc->reboot();
  std::printf("wrote %zu bytes to %s\n", std::strlen(argv[5]), argv[4]);
  return 0;
}

int cmd_get(int argc, char** argv) {
  if (argc < 5) return usage();
  auto mc = attach_and_boot(argv[2], argv[3]);
  const auto data = mc->data_fs().read_file(argv[4]);
  std::fwrite(data.data(), 1, data.size(), stdout);
  std::printf("\n");
  mc->reboot();
  return 0;
}

int cmd_rm(int argc, char** argv) {
  if (argc < 5) return usage();
  auto mc = attach_and_boot(argv[2], argv[3]);
  mc->data_fs().unlink(argv[4]);
  mc->data_fs().sync();
  mc->reboot();
  std::printf("removed %s\n", argv[4]);
  return 0;
}

int cmd_gc(int argc, char** argv) {
  if (argc < 4) return usage();
  auto mc = attach(argv[2]);
  if (mc->boot(argv[3]) != core::AuthResult::kHidden) {
    std::fprintf(stderr, "gc requires a hidden password (Sec. IV-D)\n");
    return 1;
  }
  std::vector<std::string> prot;
  for (int i = 4; i < argc; ++i) prot.emplace_back(argv[i]);
  const auto reclaimed = mc->collect_garbage(0.5, prot);
  std::printf("reclaimed %llu dummy chunk(s)\n",
              static_cast<unsigned long long>(reclaimed));
  mc->reboot();
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  blockdev::FileBlockDevice dev(argv[2], image_blocks(argv[2]));
  const auto snap = adversary::Snapshot::take(dev);
  adversary::ThinMetadataReader meta(snap);
  const auto& sb = meta.superblock();
  std::printf("thin pool: %llu chunks x %u blocks, policy=%s, txn=%llu\n",
              static_cast<unsigned long long>(sb.nr_chunks), sb.chunk_blocks,
              sb.policy == thin::AllocPolicy::kRandom ? "random"
                                                      : "sequential",
              static_cast<unsigned long long>(sb.txn_id));
  std::printf("allocated: %zu chunks\n", meta.allocated_chunks().size());
  for (std::uint32_t v = 0; v < meta.volumes().size(); ++v) {
    const auto& vol = meta.volumes()[v];
    if (!vol.active) continue;
    std::printf("  V%u: %llu mapped / %llu virtual chunk(s)%s\n", v + 1,
                static_cast<unsigned long long>(vol.mapped_chunks),
                static_cast<unsigned long long>(vol.virtual_chunks),
                v == 0 ? "  (public)" : "  (hidden or dummy — cannot tell)");
  }
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc < 4) return usage();
  blockdev::FileBlockDevice dev(argv[2], image_blocks(argv[2]));
  const auto snap = adversary::Snapshot::take(dev);
  std::ofstream out(argv[3], std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(snap.image.data()),
            static_cast<std::streamsize>(snap.image.size()));
  std::printf("snapshot of %s written to %s (%zu bytes)\n", argv[2], argv[3],
              snap.image.size());
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 4) return usage();
  blockdev::FileBlockDevice dev(argv[2], image_blocks(argv[2]));
  const auto now = adversary::Snapshot::take(dev);
  adversary::Snapshot old;
  old.block_size = now.block_size;
  {
    std::ifstream in(argv[3], std::ios::binary | std::ios::ate);
    if (!in) {
      std::fprintf(stderr, "cannot open snapshot %s\n", argv[3]);
      return 1;
    }
    old.image.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(old.image.data()),
            static_cast<std::streamsize>(old.image.size()));
  }
  adversary::ThinMetadataReader r0(old), r1(now);
  for (const auto& rep :
       {adversary::nonpublic_growth_attack(r0, r1),
        adversary::dummy_budget_attack(r0, r1, /*lambda=*/1.0),
        adversary::sequential_layout_attack(r1)}) {
    std::printf("%-8s %s\n",
                rep.suspects_hidden_data ? "SUSPECT" : "clean",
                rep.reasoning.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "init") return cmd_init(argc, argv);
    if (cmd == "ls") return cmd_ls(argc, argv);
    if (cmd == "put") return cmd_put(argc, argv);
    if (cmd == "get") return cmd_get(argc, argv);
    if (cmd == "rm") return cmd_rm(argc, argv);
    if (cmd == "gc") return cmd_gc(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "snapshot") return cmd_snapshot(argc, argv);
    if (cmd == "analyze") return cmd_analyze(argc, argv);
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
