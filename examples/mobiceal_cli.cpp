// mobiceal_cli — operate PDE device images from the command line.
//
// The closest equivalent of the paper's `vdc cryptfs pde ...` interface,
// working on ordinary files so you can poke at real on-disk state. Every
// registered api::PdeScheme backend can be driven via --scheme; the
// adversary commands (info/snapshot/analyze) work on raw images and need
// no scheme or password at all.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "api/scheme_registry.hpp"
#include "blockdev/block_device.hpp"
#include "dm/striped_target.hpp"
#include "util/error.hpp"

using namespace mobiceal;

namespace {

std::string g_scheme = "mobiceal";
/// Every stack knob (--queue-depth, --cache-blocks, --stripes, ...) comes
/// from the api::StackConfig registry — the CLI never parses one itself.
api::StackConfig g_stack;

api::SchemeOptions cli_options() {
  api::SchemeOptions opts;
  opts.num_volumes = 8;
  opts.chunk_blocks = 4;  // 16 KiB chunks keep small images usable
  opts.kdf_iterations = 2000;
  opts.fs_inode_count = 512;
  opts.stack = g_stack;
  return opts;
}

std::uint64_t image_blocks(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw util::IoError("cannot open image: " + path);
  return static_cast<std::uint64_t>(in.tellg()) / 4096;
}

/// Path of backing stripe `i`: the image itself unstriped, <image>.s<i>
/// with --stripes N (one file per backing device, as separate eMMC
/// channels would be separate flash parts).
std::string stripe_path(const std::string& image, std::uint32_t i) {
  return g_stack.stripe_count <= 1 ? image
                                   : image + ".s" + std::to_string(i);
}

/// Fills opts with the image's backing device(s). `blocks_per_stripe` 0
/// sizes each device from the existing file (attach path).
void open_backing(api::SchemeOptions& opts, const std::string& image,
                  std::uint64_t blocks_per_stripe) {
  if (g_stack.stripe_count <= 1) {
    opts.device = std::make_shared<blockdev::FileBlockDevice>(
        image, blocks_per_stripe ? blocks_per_stripe : image_blocks(image));
    opts.device->set_queue_depth(g_stack.queue_depth);
    return;
  }
  for (std::uint32_t i = 0; i < g_stack.stripe_count; ++i) {
    const std::string path = stripe_path(image, i);
    auto dev = std::make_shared<blockdev::FileBlockDevice>(
        path, blocks_per_stripe ? blocks_per_stripe : image_blocks(path));
    dev->set_queue_depth(g_stack.queue_depth);
    opts.stripe_devices.push_back(std::move(dev));
  }
}

/// Raw (keyless) view for the adversary commands: the border agent images
/// each backing device and reassembles the chunk interleave — placement is
/// pure geometry, no secret involved.
std::shared_ptr<blockdev::BlockDevice> open_raw(const std::string& image) {
  if (g_stack.stripe_count <= 1) {
    return std::make_shared<blockdev::FileBlockDevice>(image,
                                                       image_blocks(image));
  }
  std::vector<std::shared_ptr<blockdev::BlockDevice>> stripes;
  for (std::uint32_t i = 0; i < g_stack.stripe_count; ++i) {
    const std::string path = stripe_path(image, i);
    stripes.push_back(std::make_shared<blockdev::FileBlockDevice>(
        path, image_blocks(path)));
  }
  return std::make_shared<dm::StripedTarget>(std::move(stripes),
                                             g_stack.stripe_chunk_blocks);
}

std::unique_ptr<api::PdeScheme> attach(const std::string& image) {
  auto opts = cli_options();
  opts.format = false;
  open_backing(opts, image, 0);
  return api::SchemeRegistry::create(g_scheme, opts);
}

std::unique_ptr<api::PdeScheme> attach_and_unlock(const std::string& image,
                                                  const std::string& pwd) {
  auto dev = attach(image);
  const auto result = dev->unlock(pwd);
  if (!result.ok) {
    throw util::PolicyError("password does not unlock any volume");
  }
  std::fprintf(stderr, "[unlocked: %s volume, scheme %s]\n",
               result.volume == api::VolumeClass::kPublic ? "public"
                                                          : "hidden",
               g_scheme.c_str());
  return dev;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mobiceal_cli [--scheme <name>] [--queue-depth <n>]\n"
      "                    [--cache-blocks <n>] [--cache-writeback 0|1]\n"
      "                    [--stripes <n>] [--stripe-chunk <blocks>]\n"
      "                    [--crypto-lanes <n>] [--clock-shards <n>]\n"
      "                    [--flusher 0|1] [--flusher-dirty-pct <n>]\n"
      "                    [--flusher-deadline-ns <n>]\n"
      "                    <command> [args...]\n"
      "\n"
      "commands:\n"
      "  init <image> <size_mb> <pub_pwd> [hidden_pwd...]\n"
      "          create and format an image file (>= 8 MB). Schemes with\n"
      "          one hidden volume take exactly one hidden_pwd; MobiCeal\n"
      "          takes any number; Android FDE ignores them.\n"
      "  ls <image> <pwd> [dir]        list a directory (default /)\n"
      "  put <image> <pwd> <path> <text>   write <text> to a file\n"
      "  get <image> <pwd> <path>      print a file's contents\n"
      "  rm <image> <pwd> <path>       remove a file\n"
      "  gc <image> <hidden_pwd> [protected_pwd...]\n"
      "          reclaim dummy chunks (schemes with garbage collection,\n"
      "          hidden mode only — Sec. IV-D)\n"
      "  info <image>                  adversary's dm-thin metadata view\n"
      "  snapshot <image> <out_file>   raw image snapshot (border agent)\n"
      "  analyze <image> <old_snapshot>    run multi-snapshot attacks\n"
      "  --list-schemes                print registered schemes and exit\n"
      "\n"
      "<pwd> may be the decoy password (public volume) or any hidden\n"
      "password. --queue-depth advertises how many requests the image's\n"
      "device keeps in flight (default 1): dm-crypt then pipelines cipher\n"
      "work against outstanding I/O through the async submit engine.\n"
      "--cache-blocks puts a block cache (writeback where the scheme's\n"
      "capabilities allow, writethrough otherwise) between the mounted\n"
      "filesystem and the crypt layer (default 0 = off);\n"
      "--cache-writeback 0 forces writethrough.\n"
      "--stripes N runs the whole stack over a RAID-0 stripe of N backing\n"
      "image files <image>.s0 .. <image>.s(N-1), interleaved in\n"
      "--stripe-chunk block chunks (default 16 = 64 KiB); pass the same\n"
      "flags to every command touching the image, including the adversary\n"
      "commands, which reassemble the interleave from the backing files.\n"
      "--crypto-lanes N models N parallel kcryptd cipher workers (virtual\n"
      "service time only; pair with --stripes so the cipher keeps up).\n"
      "--clock-shards N shards the virtual clock per stripe lane (timed\n"
      "stacks only; the CLI's file-backed devices are untimed, so it is\n"
      "accepted for parity with the benches but has no effect here).\n"
      "--flusher 1 runs a background writeback thread for the block cache\n"
      "(kicks at --flusher-dirty-pct %% dirty, default 50).\n"
      "--scheme selects the backend (default: mobiceal); note\n"
      "that the DEFY/HIVE reproductions keep their translation maps in\n"
      "RAM and therefore only support `init` followed by in-process use,\n"
      "not re-attachment.\n");
  return 2;
}

int cmd_list_schemes() {
  for (const auto& name : api::SchemeRegistry::names()) {
    const auto& entry = api::SchemeRegistry::entry(name);
    std::printf("%-12s %-52s [%s]%s\n", name.c_str(),
                entry.description.c_str(),
                entry.capabilities.to_string().c_str(),
                entry.supports_attach ? "" : "  (no re-attach)");
  }
  return 0;
}

int cmd_init(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string image = argv[2];
  const std::uint64_t mb = std::strtoull(argv[3], nullptr, 10);
  auto opts = cli_options();
  opts.public_password = argv[4];
  for (int i = 5; i < argc; ++i) opts.hidden_passwords.emplace_back(argv[i]);
  if (mb < 8) {
    std::fprintf(stderr, "image must be at least 8 MB\n");
    return 1;
  }
  const std::uint64_t total_blocks = mb << 8;
  if (g_stack.stripe_count > 1 &&
      total_blocks % (std::uint64_t{g_stack.stripe_count} *
                      g_stack.stripe_chunk_blocks) !=
          0) {
    std::fprintf(stderr,
                 "image size must divide into %u stripes of whole %u-block "
                 "chunks\n",
                 g_stack.stripe_count, g_stack.stripe_chunk_blocks);
    return 1;
  }
  open_backing(opts, image, total_blocks / g_stack.stripe_count);
  auto dev = api::SchemeRegistry::create(g_scheme, opts);
  std::printf("initialised %s: %llu MB%s, scheme %s (%zu hidden "
              "password(s))\n",
              image.c_str(), static_cast<unsigned long long>(mb),
              g_stack.stripe_count > 1 ? " (striped)" : "",
              g_scheme.c_str(), opts.hidden_passwords.size());
  return 0;
}

int cmd_ls(int argc, char** argv) {
  if (argc < 4) return usage();
  auto dev = attach_and_unlock(argv[2], argv[3]);
  const std::string dir = argc > 4 ? argv[4] : "/";
  for (const auto& name : dev->data_fs().list(dir)) {
    const std::string full = dir == "/" ? "/" + name : dir + "/" + name;
    const auto info = dev->data_fs().stat(full);
    std::printf("%10llu  %s%s\n",
                static_cast<unsigned long long>(info.size), full.c_str(),
                info.is_dir ? "/" : "");
  }
  dev->reboot();
  return 0;
}

int cmd_put(int argc, char** argv) {
  if (argc < 6) return usage();
  auto dev = attach_and_unlock(argv[2], argv[3]);
  dev->data_fs().write_file(argv[4], util::bytes_of(argv[5]));
  dev->data_fs().sync();
  dev->reboot();
  std::printf("wrote %zu bytes to %s\n", std::strlen(argv[5]), argv[4]);
  return 0;
}

int cmd_get(int argc, char** argv) {
  if (argc < 5) return usage();
  auto dev = attach_and_unlock(argv[2], argv[3]);
  const auto data = dev->data_fs().read_file(argv[4]);
  std::fwrite(data.data(), 1, data.size(), stdout);
  std::printf("\n");
  dev->reboot();
  return 0;
}

int cmd_rm(int argc, char** argv) {
  if (argc < 5) return usage();
  auto dev = attach_and_unlock(argv[2], argv[3]);
  dev->data_fs().unlink(argv[4]);
  dev->data_fs().sync();
  dev->reboot();
  std::printf("removed %s\n", argv[4]);
  return 0;
}

int cmd_gc(int argc, char** argv) {
  if (argc < 4) return usage();
  if (!api::SchemeRegistry::entry(g_scheme)
           .capabilities.has(api::Capability::kGarbageCollection)) {
    std::fprintf(stderr, "scheme %s has no garbage collection\n",
                 g_scheme.c_str());
    return 1;
  }
  auto dev = attach(argv[2]);
  const auto result = dev->unlock(argv[3]);
  if (!result.ok || result.volume != api::VolumeClass::kHidden) {
    std::fprintf(stderr, "gc requires a hidden password (Sec. IV-D)\n");
    return 1;
  }
  std::vector<std::string> prot;
  for (int i = 4; i < argc; ++i) prot.emplace_back(argv[i]);
  const auto reclaimed = dev->collect_garbage(0.5, prot);
  std::printf("reclaimed %llu dummy chunk(s)\n",
              static_cast<unsigned long long>(reclaimed));
  dev->reboot();
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto dev = open_raw(argv[2]);
  const auto snap = adversary::Snapshot::take(*dev);
  adversary::ThinMetadataReader meta(snap);
  const auto& sb = meta.superblock();
  std::printf("thin pool: %llu chunks x %u blocks, policy=%s, txn=%llu\n",
              static_cast<unsigned long long>(sb.nr_chunks), sb.chunk_blocks,
              sb.policy == thin::AllocPolicy::kRandom ? "random"
                                                      : "sequential",
              static_cast<unsigned long long>(sb.txn_id));
  std::printf("allocated: %zu chunks\n", meta.allocated_chunks().size());
  for (std::uint32_t v = 0; v < meta.volumes().size(); ++v) {
    const auto& vol = meta.volumes()[v];
    if (!vol.active) continue;
    std::printf("  V%u: %llu mapped / %llu virtual chunk(s)%s\n", v + 1,
                static_cast<unsigned long long>(vol.mapped_chunks),
                static_cast<unsigned long long>(vol.virtual_chunks),
                v == 0 ? "  (public)" : "  (hidden or dummy — cannot tell)");
  }
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto dev = open_raw(argv[2]);
  const auto snap = adversary::Snapshot::take(*dev);
  std::ofstream out(argv[3], std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(snap.image.data()),
            static_cast<std::streamsize>(snap.image.size()));
  std::printf("snapshot of %s written to %s (%zu bytes)\n", argv[2], argv[3],
              snap.image.size());
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto dev = open_raw(argv[2]);
  const auto now = adversary::Snapshot::take(*dev);
  adversary::Snapshot old;
  old.block_size = now.block_size;
  {
    std::ifstream in(argv[3], std::ios::binary | std::ios::ate);
    if (!in) {
      std::fprintf(stderr, "cannot open snapshot %s\n", argv[3]);
      return 1;
    }
    old.image.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(old.image.data()),
            static_cast<std::streamsize>(old.image.size()));
  }
  adversary::ThinMetadataReader r0(old), r1(now);
  for (const auto& rep :
       {adversary::nonpublic_growth_attack(r0, r1),
        adversary::dummy_budget_attack(r0, r1, /*lambda=*/1.0),
        adversary::sequential_layout_attack(r1)}) {
    std::printf("%-8s %s\n",
                rep.suspects_hidden_data ? "SUSPECT" : "clean",
                rep.reasoning.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Consume global flags before the command word. Stack knobs (anything in
  // the api::StackConfig registry) are collected verbatim and applied in
  // one shot — the CLI itself only knows --scheme / --list-schemes.
  std::vector<char*> args(argv, argv + argc);
  std::vector<char*> knob_args = {argv[0]};
  for (std::size_t i = 1; i < args.size();) {
    if (std::strcmp(args[i], "--list-schemes") == 0) return cmd_list_schemes();
    if (std::strcmp(args[i], "--scheme") == 0) {
      if (i + 1 >= args.size()) return usage();
      g_scheme = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    if (api::StackConfig::is_knob_flag(args[i])) {
      const bool has_eq = std::strchr(args[i], '=') != nullptr;
      if (!has_eq && i + 1 >= args.size()) return usage();
      const std::size_t take = has_eq ? 1 : 2;
      for (std::size_t j = 0; j < take; ++j) knob_args.push_back(args[i + j]);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i + take));
      continue;
    }
    break;
  }
  g_stack.apply_knobs(static_cast<int>(knob_args.size()), knob_args.data());
  if (args.size() < 2) return usage();
  // Global flags are only valid before the command word — a stray
  // "--scheme" later would otherwise be swallowed as a password/path.
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (std::strcmp(args[i], "--scheme") == 0 ||
        std::strcmp(args[i], "--list-schemes") == 0 ||
        api::StackConfig::is_knob_flag(args[i])) {
      std::fprintf(stderr, "%s must come before the command\n", args[i]);
      return 2;
    }
  }
  if (!api::SchemeRegistry::contains(g_scheme)) {
    std::fprintf(stderr, "unknown scheme: %s (try --list-schemes)\n",
                 g_scheme.c_str());
    return 2;
  }
  const std::string cmd = args[1];
  const int ac = static_cast<int>(args.size());
  char** av = args.data();
  try {
    if (cmd == "init") return cmd_init(ac, av);
    if (cmd == "ls") return cmd_ls(ac, av);
    if (cmd == "put") return cmd_put(ac, av);
    if (cmd == "get") return cmd_get(ac, av);
    if (cmd == "rm") return cmd_rm(ac, av);
    if (cmd == "gc") return cmd_gc(ac, av);
    if (cmd == "info") return cmd_info(ac, av);
    if (cmd == "snapshot") return cmd_snapshot(ac, av);
    if (cmd == "analyze") return cmd_analyze(ac, av);
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
