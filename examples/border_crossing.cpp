// Border crossing: the paper's motivating scenario (Sec. I) end to end.
//
// A journalist's phone is imaged by border agents on entry AND exit — a
// multi-snapshot adversary. Between crossings the journalist collects
// sensitive footage in hidden mode and uses the phone normally in public
// mode. We run the identical story on MobiCeal and on MobiPluto (the prior
// state of the art) and let the adversary toolkit issue its verdicts.
#include <cstdio>

#include "adversary/attacks.hpp"
#include "adversary/metadata_reader.hpp"
#include "adversary/snapshot.hpp"
#include "baselines/mobipluto.hpp"
#include "blockdev/block_device.hpp"
#include "core/mobiceal.hpp"

using namespace mobiceal;

namespace {

util::Bytes footage(std::size_t n, std::uint8_t seed) {
  util::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  }
  return out;
}

void verdict_line(const char* attack, const adversary::AttackReport& rep) {
  std::printf("  %-28s %s  (%s)\n", attack,
              rep.suspects_hidden_data ? "SUSPECTS HIDDEN DATA" : "clean",
              rep.reasoning.c_str());
}

}  // namespace

int main() {
  std::printf("=== The border-crossing scenario ===\n\n");

  // ---------- MobiCeal phone --------------------------------------------------
  std::printf("--- phone A: MobiCeal ---\n");
  auto diskA = std::make_shared<blockdev::MemBlockDevice>(16384);
  core::MobiCealDevice::Config cfg;
  cfg.num_volumes = 6;
  cfg.chunk_blocks = 4;
  cfg.kdf_iterations = 64;
  cfg.fs_inode_count = 128;
  cfg.rng_seed = 2026;
  auto mc = core::MobiCealDevice::initialize(diskA, cfg, "tourist-pw",
                                             {"journalist-pw"});
  // Normal usage before travelling.
  mc->boot("tourist-pw");
  mc->data_fs().write_file("/itinerary.pdf", footage(60000, 1));
  mc->reboot();

  std::printf("[checkpoint 1] agents image the phone (snapshot D0)\n");
  const auto d0 = adversary::Snapshot::take(*diskA);

  // In-country: public cover traffic + hidden footage via fast switch.
  mc->boot("tourist-pw");
  mc->data_fs().mkdir("/camera");
  for (int i = 0; i < 8; ++i) {
    mc->data_fs().write_file("/camera/pic" + std::to_string(i) + ".jpg",
                             footage(50000, static_cast<std::uint8_t>(i)));
  }
  mc->switch_to_hidden("journalist-pw");
  mc->data_fs().write_file("/protest_footage.mp4", footage(64 * 1024, 9));
  mc->reboot();
  mc->boot("tourist-pw");  // paper discipline: matching public file
  mc->data_fs().write_file("/camera/pic_final.jpg", footage(64 * 1024, 10));
  mc->reboot();

  std::printf("[checkpoint 2] agents image the phone again (snapshot D1), "
              "coerce the decoy password, and analyse:\n");
  const auto d1 = adversary::Snapshot::take(*diskA);
  {
    adversary::ThinMetadataReader r0(d0), r1(d1);
    verdict_line("non-public growth:",
                 adversary::nonpublic_growth_attack(r0, r1));
    verdict_line("dummy-budget analysis:",
                 adversary::dummy_budget_attack(r0, r1, /*lambda=*/1.0));
    verdict_line("layout analysis:",
                 adversary::sequential_layout_attack(r1));
  }
  std::printf("  -> the non-public growth is fully deniable as dummy-write "
              "traffic\n\n");

  // ---------- MobiPluto phone --------------------------------------------------
  std::printf("--- phone B: MobiPluto (prior art) — same story ---\n");
  auto diskB = std::make_shared<blockdev::MemBlockDevice>(16384);
  baselines::MobiPlutoDevice::Config pcfg;
  pcfg.chunk_blocks = 4;
  pcfg.kdf_iterations = 64;
  pcfg.fs_inode_count = 128;
  auto mp = baselines::MobiPlutoDevice::initialize(diskB, pcfg, "tourist-pw",
                                                   "journalist-pw");
  mp->boot("tourist-pw");
  mp->data_fs().write_file("/itinerary.pdf", footage(60000, 1));
  mp->reboot();
  std::printf("[checkpoint 1] snapshot D0\n");
  const auto e0 = adversary::Snapshot::take(*diskB);

  mp->boot("tourist-pw");
  for (int i = 0; i < 8; ++i) {
    mp->data_fs().write_file("/pic" + std::to_string(i) + ".jpg",
                             footage(50000, static_cast<std::uint8_t>(i)));
  }
  mp->reboot();
  mp->boot("journalist-pw");  // MobiPluto needs a full reboot to switch
  mp->data_fs().write_file("/protest_footage.mp4", footage(64 * 1024, 9));
  mp->reboot();
  mp->boot("tourist-pw");
  mp->data_fs().write_file("/pic_final.jpg", footage(64 * 1024, 10));
  mp->reboot();

  std::printf("[checkpoint 2] snapshot D1 + analysis:\n");
  const auto e1 = adversary::Snapshot::take(*diskB);
  {
    adversary::ThinMetadataReader r0(e0), r1(e1);
    verdict_line("non-public growth:",
                 adversary::nonpublic_growth_attack(r0, r1));
    verdict_line("layout analysis:",
                 adversary::sequential_layout_attack(r1));
  }
  std::printf("  -> MobiPluto has no mechanism that accounts for non-public "
              "changes:\n     the journalist is compromised.\n");
  return 0;
}
