#!/usr/bin/env python3
"""Unit tests for bench_compare.py — the CI regression gate.

Stdlib-only (unittest + tempfile); run directly or via ctest:

    python3 tools/test_bench_compare.py -v

Covers the gate semantics the workflows rely on: the >10% virtual-time
threshold in both directions, the `_adv` security-canary absolute-growth
gate, untracked suffixes, disappearing metrics, directory pairing (new
bench = info, missing candidate = failure), and the run-configuration
mismatch guard.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", os.path.join(HERE, "bench_compare.py"))
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def write_bench(path, bench, metrics):
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": bench, "metrics": metrics}, f)


class GateHarness(unittest.TestCase):
    """Runs bench_compare.main() against freshly written files."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def path(self, name):
        return os.path.join(self.dir, name)

    def run_gate(self, *argv):
        """Returns the gate's exit status (SystemExit counts as failure)."""
        old_argv = sys.argv
        sys.argv = ["bench_compare.py", *argv]
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out):
                return bench_compare.main(), out.getvalue()
        except SystemExit as e:  # hard config/usage errors
            return e.code if isinstance(e.code, int) else 1, out.getvalue()
        finally:
            sys.argv = old_argv

    def pair(self, base_metrics, cur_metrics, *extra, bench="demo"):
        write_bench(self.path("base.json"), bench, base_metrics)
        write_bench(self.path("cur.json"), bench, cur_metrics)
        return self.run_gate(self.path("base.json"), self.path("cur.json"),
                             *extra)


class ThresholdGate(GateHarness):
    def test_identical_files_pass(self):
        rc, _ = self.pair({"a.dd_write_kbps": 100.0},
                          {"a.dd_write_kbps": 100.0})
        self.assertEqual(rc, 0)

    def test_throughput_drop_beyond_threshold_fails(self):
        rc, out = self.pair({"a.dd_write_kbps": 100.0},
                            {"a.dd_write_kbps": 85.0})
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSION", out)

    def test_throughput_drop_within_threshold_passes(self):
        rc, _ = self.pair({"a.dd_write_kbps": 100.0},
                          {"a.dd_write_kbps": 95.0})
        self.assertEqual(rc, 0)

    def test_throughput_improvement_passes(self):
        rc, _ = self.pair({"a.dd_write_kbps": 100.0},
                          {"a.dd_write_kbps": 250.0})
        self.assertEqual(rc, 0)

    def test_lower_is_better_suffix_gates_increases(self):
        rc, _ = self.pair({"boot_s": 2.0}, {"boot_s": 2.5})
        self.assertEqual(rc, 1)
        rc, _ = self.pair({"boot_s": 2.0}, {"boot_s": 1.2})
        self.assertEqual(rc, 0)

    def test_threshold_flag_loosens_the_gate(self):
        rc, _ = self.pair({"a.dd_write_kbps": 100.0},
                          {"a.dd_write_kbps": 85.0}, "--threshold", "30")
        self.assertEqual(rc, 0)

    def test_untracked_suffix_never_gates(self):
        rc, _ = self.pair({"shape.change_pct": 5.0, "count": 10.0},
                          {"shape.change_pct": 95.0, "count": 1.0})
        self.assertEqual(rc, 0)

    def test_tracked_metric_disappearing_fails(self):
        rc, out = self.pair({"a.dd_write_kbps": 100.0}, {})
        self.assertEqual(rc, 1)
        self.assertIn("disappeared", out)


class CanaryGate(GateHarness):
    def test_advantage_growth_beyond_tolerance_fails(self):
        rc, _ = self.pair({"game.mobiceal_adv": 0.02},
                          {"game.mobiceal_adv": 0.22})
        self.assertEqual(rc, 1)

    def test_advantage_growth_within_tolerance_passes(self):
        rc, _ = self.pair({"game.mobiceal_adv": 0.02},
                          {"game.mobiceal_adv": 0.04})
        self.assertEqual(rc, 0)

    def test_advantage_shrinking_always_passes(self):
        rc, _ = self.pair({"game.mobiceal_adv": 0.50},
                          {"game.mobiceal_adv": 0.01})
        self.assertEqual(rc, 0)

    def test_parity_canary_flip_fails_absolutely(self):
        # 0 -> 1 is the stripe/cache parity canary firing: a relative
        # threshold would miss it (old == 0), the absolute gate must not.
        rc, _ = self.pair({"mc.s4.qd8.stripe_parity_adv": 0.0},
                          {"mc.s4.qd8.stripe_parity_adv": 1.0})
        self.assertEqual(rc, 1)

    def test_adv_tolerance_flag(self):
        rc, _ = self.pair({"x_adv": 0.0}, {"x_adv": 0.2},
                          "--adv-tolerance", "0.5")
        self.assertEqual(rc, 0)


class ConfigGuard(GateHarness):
    def test_workload_mismatch_is_a_hard_error(self):
        rc, _ = self.pair({"workload_mb": 4, "a.dd_write_kbps": 100.0},
                          {"workload_mb": 64, "a.dd_write_kbps": 500.0})
        self.assertNotEqual(rc, 0)

    def test_stripe_mismatch_is_a_hard_error(self):
        rc, _ = self.pair({"stripes": 1, "a.dd_write_kbps": 100.0},
                          {"stripes": 4, "a.dd_write_kbps": 300.0})
        self.assertNotEqual(rc, 0)

    def test_config_key_missing_on_one_side_still_compares(self):
        # Baselines predating a knob don't record it; the guard must only
        # enforce keys present in BOTH files.
        rc, _ = self.pair({"a.dd_write_kbps": 100.0},
                          {"stripes": 1, "a.dd_write_kbps": 100.0})
        self.assertEqual(rc, 0)

    def test_clock_shard_mismatch_is_a_hard_error(self):
        rc, _ = self.pair({"clock_shards": 1, "a.dd_write_kbps": 100.0},
                          {"clock_shards": 4, "a.dd_write_kbps": 280.0})
        self.assertNotEqual(rc, 0)

    def test_flusher_policy_mismatch_is_a_hard_error(self):
        # Benches record the flusher policy (bench_flusher); runs at a
        # different dirty-ratio or deadline are not comparable.
        rc, _ = self.pair({"flusher_dirty_pct": 50, "a.rewrite_kbps": 10.0},
                          {"flusher_dirty_pct": 10, "a.rewrite_kbps": 30.0})
        self.assertNotEqual(rc, 0)
        rc, _ = self.pair(
            {"flusher_deadline_ns": 2e6, "a.rewrite_kbps": 10.0},
            {"flusher_deadline_ns": 1e6, "a.rewrite_kbps": 10.0})
        self.assertNotEqual(rc, 0)

    def test_alloc_shard_mismatch_is_a_hard_error(self):
        # The sharded allocator keeps results identical across shard counts
        # only in the single-threaded benches; the fleet bench's contention
        # model makes alloc_shards part of the run configuration.
        rc, _ = self.pair({"alloc_shards": 1, "a.dd_write_kbps": 100.0},
                          {"alloc_shards": 4, "a.dd_write_kbps": 250.0})
        self.assertNotEqual(rc, 0)

    def test_mirror_leg_mismatch_is_a_hard_error(self):
        rc, _ = self.pair({"mirror_legs": 2, "healthy.dd_read_kbps": 400.0},
                          {"mirror_legs": 3, "healthy.dd_read_kbps": 600.0})
        self.assertNotEqual(rc, 0)

    def test_fault_knob_mismatch_is_a_hard_error(self):
        # Degraded-stack runs are comparable only at matching fault
        # schedules and rebuild rates.
        for key in ("fault_read_ppm", "fault_drop_member",
                    "rebuild_rate_blocks"):
            rc, _ = self.pair({key: 0, "degraded.dd_read_kbps": 300.0},
                              {key: 2, "degraded.dd_read_kbps": 280.0})
            self.assertNotEqual(rc, 0, key)

    def test_ftl_knob_mismatch_is_a_hard_error(self):
        # FTL runs are comparable only at matching flash geometry: mapping
        # mode, over-provisioning, and erase-block size all change GC
        # pressure and therefore every timing.
        for key in ("ftl_mode", "ftl_over_provision_pct",
                    "ftl_pages_per_block"):
            rc, _ = self.pair({key: 0, "gc.dd_write_kbps": 500.0},
                              {key: 1, "gc.dd_write_kbps": 480.0},
                              bench="ftl")
            self.assertNotEqual(rc, 0, key)

    def test_matching_ftl_knobs_compare(self):
        rc, _ = self.pair(
            {"ftl_mode": 1, "ftl_over_provision_pct": 7,
             "ftl_pages_per_block": 64, "gc.dd_write_kbps": 500.0},
            {"ftl_mode": 1, "ftl_over_provision_pct": 7,
             "ftl_pages_per_block": 64, "gc.dd_write_kbps": 495.0},
            bench="ftl")
        self.assertEqual(rc, 0)

    def test_fleet_tenant_mismatch_is_a_hard_error(self):
        rc, _ = self.pair(
            {"fleet_tenants": 4, "t4.s4.aggregate_write_kbps": 600.0},
            {"fleet_tenants": 8, "t8.s4.aggregate_write_kbps": 900.0})
        self.assertNotEqual(rc, 0)

    def test_different_bench_names_are_a_hard_error(self):
        write_bench(self.path("base.json"), "alpha", {"x_kbps": 1.0})
        write_bench(self.path("cur.json"), "beta", {"x_kbps": 1.0})
        rc, _ = self.run_gate(self.path("base.json"), self.path("cur.json"))
        self.assertNotEqual(rc, 0)

    def test_malformed_json_is_a_hard_error(self):
        with open(self.path("base.json"), "w", encoding="utf-8") as f:
            f.write("{not json")
        write_bench(self.path("cur.json"), "demo", {"x_kbps": 1.0})
        rc, _ = self.run_gate(self.path("base.json"), self.path("cur.json"))
        self.assertNotEqual(rc, 0)


class DirectoryMode(GateHarness):
    def setUp(self):
        super().setUp()
        self.base_dir = os.path.join(self.dir, "baselines")
        self.cur_dir = os.path.join(self.dir, "candidate")
        os.mkdir(self.base_dir)
        os.mkdir(self.cur_dir)

    def test_pairs_by_name_and_reports_new_benches_as_info(self):
        write_bench(os.path.join(self.base_dir, "BENCH_a.json"), "a",
                    {"x_kbps": 100.0})
        write_bench(os.path.join(self.cur_dir, "BENCH_a.json"), "a",
                    {"x_kbps": 101.0})
        # A brand-new bench without a committed baseline: info, not a gate.
        write_bench(os.path.join(self.cur_dir, "BENCH_b.json"), "b",
                    {"y_kbps": 5.0})
        rc, out = self.run_gate(self.base_dir, self.cur_dir)
        self.assertEqual(rc, 0)
        self.assertIn("new, skipped (info)", out)

    def test_missing_candidate_fails_the_gate(self):
        # A gated bench silently disappearing from CI is itself a
        # regression — e.g. the smoke loop's filter regex went stale.
        write_bench(os.path.join(self.base_dir, "BENCH_a.json"), "a",
                    {"x_kbps": 100.0})
        rc, out = self.run_gate(self.base_dir, self.cur_dir)
        self.assertEqual(rc, 1)
        self.assertIn("missing from candidate", out)

    def test_regression_in_any_pair_fails(self):
        write_bench(os.path.join(self.base_dir, "BENCH_a.json"), "a",
                    {"x_kbps": 100.0})
        write_bench(os.path.join(self.cur_dir, "BENCH_a.json"), "a",
                    {"x_kbps": 100.0})
        write_bench(os.path.join(self.base_dir, "BENCH_b.json"), "b",
                    {"y_s": 1.0})
        write_bench(os.path.join(self.cur_dir, "BENCH_b.json"), "b",
                    {"y_s": 2.0})
        rc, _ = self.run_gate(self.base_dir, self.cur_dir)
        self.assertEqual(rc, 1)

    def test_mixed_file_and_directory_is_a_hard_error(self):
        write_bench(self.path("base.json"), "a", {"x_kbps": 1.0})
        rc, _ = self.run_gate(self.path("base.json"), self.cur_dir)
        self.assertNotEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
