#!/usr/bin/env python3
"""Diff bench JSON files (or whole directories) and gate on regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [options]
       bench_compare.py BASELINE_DIR/ CURRENT_DIR/  [options]

Options: [--threshold PCT] [--adv-tolerance ADV]

Bench binaries emit BENCH_<name>.json via --json / MOBICEAL_BENCH_JSON (see
bench/harness.hpp). Metric-name suffixes carry the comparison direction:

  higher is better:  _kbps  _mbps
  lower is better:   _s  _ns
  security canary:   _adv   (distinguisher advantage, absolute gate)

`_adv` metrics are the security-game canaries: a distinguisher's advantage
growing by more than --adv-tolerance (absolute, default 0.05) over the
committed baseline fails the gate — a deniability regression, not a
performance one. Advantages shrinking is always fine.

Metrics with any other suffix (percentages, counts, derived ratios like
_speedup — whose numerator and denominator are already gated individually)
are informational: printed, never gated.

Directory mode pairs the BENCH_*.json files by name: a bench present in
the candidate directory but missing from the baselines is reported as
"new, skipped (info)" — commit a baseline to start gating it — while a
baseline bench missing from the candidate fails the gate (a gated bench
silently disappearing is a regression). A one-line per-bench summary table
prints at the end in both modes.

The exit code is nonzero iff any tracked metric regresses by more than the
threshold (default 10%), any canary grows beyond tolerance, a compared pair
is from different benches or run configurations (workload_mb /
queue_depth / cache_blocks), a tracked baseline metric disappeared, or a
baseline bench has no candidate file. Virtual-clock benches are
deterministic, so any drift is a real code change, not noise.
"""

import argparse
import json
import os
import sys

HIGHER_BETTER = ("_kbps", "_mbps")
LOWER_BETTER = ("_s", "_ns")
CANARY = ("_adv",)

# Run-configuration metrics: a mismatch means the two files are not
# comparable at all (different workload, device queue model, cache,
# stripe geometry, clock sharding, or flusher policy). Only enforced when
# both files record the key, so baselines from before a knob existed keep
# comparing.
CONFIG_KEYS = ("workload_mb", "queue_depth", "cache_blocks", "stripes",
               "stripe_chunk_blocks", "crypto_lanes", "clock_shards",
               "flusher_dirty_pct", "flusher_deadline_ns", "alloc_shards",
               "fleet_tenants", "mirror_legs", "fault_read_ppm",
               "fault_drop_member", "rebuild_rate_blocks", "ftl_mode",
               "ftl_over_provision_pct", "ftl_pages_per_block")

STATUS_OK = "ok"
STATUS_REGRESSION = "REGRESSION"
STATUS_NEW = "new, skipped (info)"
STATUS_MISSING = "missing from candidate"


def direction(metric: str):
    """+1 higher-is-better, -1 lower-is-better, 2 canary, 0 untracked."""
    if metric.endswith(HIGHER_BETTER):
        return 1
    if metric.endswith(LOWER_BETTER):
        return -1
    if metric.endswith(CANARY):
        return 2
    return 0


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if "bench" not in doc or "metrics" not in doc:
        sys.exit(f"bench_compare: {path} is not a bench JSON file")
    return doc


class BenchReport:
    """Outcome of one baseline/candidate pair (or unpaired file)."""

    def __init__(self, bench, status, compared=0, regressions=None):
        self.bench = bench
        self.status = status
        self.compared = compared
        self.regressions = regressions or []


def compare_pair(baseline_path, current_path, args) -> BenchReport:
    base = load(baseline_path)
    cur = load(current_path)
    if base["bench"] != cur["bench"]:
        sys.exit(f"bench_compare: comparing different benches: "
                 f"{base['bench']} vs {cur['bench']}")
    # Absolute virtual times scale with the workload and queue model; runs
    # are only comparable at the same configuration (benches record it).
    for key in CONFIG_KEYS:
        bw = base["metrics"].get(key)
        cw = cur["metrics"].get(key)
        if bw is not None and cw is not None and bw != cw:
            sys.exit(f"bench_compare: {key} mismatch: baseline ran "
                     f"{bw:g}, current ran {cw:g} — rerun with a matching "
                     f"configuration")

    regressions = []
    compared = 0
    print(f"== {base['bench']}: {baseline_path} -> {current_path} "
          f"(threshold {args.threshold:g}%) ==")
    for name, old in base["metrics"].items():
        if name not in cur["metrics"]:
            if direction(name):
                regressions.append(f"{name}: tracked metric disappeared")
            continue
        new = cur["metrics"][name]
        sign = direction(name)
        if sign:
            compared += 1
        if old == 0:
            change = 0.0 if new == 0 else float("inf")
        else:
            change = 100.0 * (new - old) / abs(old)
        if sign == 2:  # security canary: absolute growth gate
            regressed = (new - old) > args.adv_tolerance
            detail = f"{new - old:+.3f} abs"
        else:
            regressed = bool(sign) and sign * change < -args.threshold
            detail = f"{change:+.2f}%"
        flag = "REGRESSION" if regressed else (
            "untracked" if not sign else "ok")
        print(f"  {name:44s} {old:14.3f} -> {new:14.3f}  "
              f"{change:+8.2f}%  {flag}")
        if regressed:
            regressions.append(f"{name}: {detail}")

    for name in cur["metrics"]:
        if name not in base["metrics"]:
            print(f"  {name:44s} (new metric, not in baseline)")

    status = STATUS_REGRESSION if regressions else STATUS_OK
    return BenchReport(base["bench"], status, compared, regressions)


def compare_dirs(baseline_dir, current_dir, args):
    def bench_files(d):
        return sorted(f for f in os.listdir(d)
                      if f.startswith("BENCH_") and f.endswith(".json"))

    reports = []
    base_files = bench_files(baseline_dir)
    cur_files = bench_files(current_dir)
    for fname in base_files:
        cur_path = os.path.join(current_dir, fname)
        if not os.path.exists(cur_path):
            reports.append(BenchReport(fname[len("BENCH_"):-len(".json")],
                                       STATUS_MISSING))
            continue
        reports.append(compare_pair(os.path.join(baseline_dir, fname),
                                    cur_path, args))
        print()
    for fname in cur_files:
        if fname in base_files:
            continue
        # A bench with no committed baseline yet: report, don't gate.
        doc = load(os.path.join(current_dir, fname))
        reports.append(BenchReport(doc["bench"], STATUS_NEW,
                                   compared=len(doc["metrics"])))
    return reports


def print_summary(reports):
    print("== summary ==")
    width = max([len(r.bench) for r in reports] + [5])
    for r in reports:
        if r.status == STATUS_NEW:
            detail = f"{r.compared} metrics (no baseline committed)"
        elif r.status == STATUS_MISSING:
            detail = "baseline has no candidate file"
        else:
            detail = (f"{r.compared} tracked metrics, "
                      f"{len(r.regressions)} regression(s)")
        print(f"  {r.bench:{width}s}  {r.status:24s} {detail}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="baseline JSON file or directory")
    ap.add_argument("current", help="candidate JSON file or directory")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--adv-tolerance", type=float, default=0.05,
                    help="max absolute advantage growth for _adv canaries "
                         "(default 0.05)")
    args = ap.parse_args()

    if os.path.isdir(args.baseline) != os.path.isdir(args.current):
        sys.exit("bench_compare: baseline and current must both be files "
                 "or both be directories")
    if os.path.isdir(args.baseline):
        reports = compare_dirs(args.baseline, args.current, args)
    else:
        reports = [compare_pair(args.baseline, args.current, args)]
        print()

    print_summary(reports)
    failing = [r for r in reports
               if r.status in (STATUS_REGRESSION, STATUS_MISSING)]
    if failing:
        print(f"\n{len(failing)} bench(es) failing the gate:")
        for r in failing:
            for reg in r.regressions or [r.status]:
                print(f"  {r.bench}: {reg}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
