#!/usr/bin/env python3
"""Diff two bench JSON files and gate on virtual-time regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                                                   [--adv-tolerance ADV]

Bench binaries emit BENCH_<name>.json via --json / MOBICEAL_BENCH_JSON (see
bench/harness.hpp). Metric-name suffixes carry the comparison direction:

  higher is better:  _kbps  _mbps
  lower is better:   _s  _ns
  security canary:   _adv   (distinguisher advantage, absolute gate)

`_adv` metrics are the security-game canaries: a distinguisher's advantage
growing by more than --adv-tolerance (absolute, default 0.05) over the
committed baseline fails the gate — a deniability regression, not a
performance one. Advantages shrinking is always fine.

Metrics with any other suffix (percentages, counts, derived ratios like
_speedup — whose numerator and denominator are already gated individually)
are informational: printed, never gated. The exit code is nonzero iff any
tracked metric regresses by more than the threshold (default 10%), any
canary grows beyond tolerance, the two files are from different benches or
run configurations (workload_mb / queue_depth), or a tracked baseline
metric disappeared. Virtual-clock benches are deterministic, so any drift
is a real code change, not noise.
"""

import argparse
import json
import sys

HIGHER_BETTER = ("_kbps", "_mbps")
LOWER_BETTER = ("_s", "_ns")
CANARY = ("_adv",)

# Run-configuration metrics: a mismatch means the two files are not
# comparable at all (different workload or device queue model).
CONFIG_KEYS = ("workload_mb", "queue_depth")


def direction(metric: str):
    """+1 higher-is-better, -1 lower-is-better, 2 canary, 0 untracked."""
    if metric.endswith(HIGHER_BETTER):
        return 1
    if metric.endswith(LOWER_BETTER):
        return -1
    if metric.endswith(CANARY):
        return 2
    return 0


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if "bench" not in doc or "metrics" not in doc:
        sys.exit(f"bench_compare: {path} is not a bench JSON file")
    return doc


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--adv-tolerance", type=float, default=0.05,
                    help="max absolute advantage growth for _adv canaries "
                         "(default 0.05)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base["bench"] != cur["bench"]:
        sys.exit(f"bench_compare: comparing different benches: "
                 f"{base['bench']} vs {cur['bench']}")
    # Absolute virtual times scale with the workload and queue model; runs
    # are only comparable at the same configuration (benches record it).
    for key in CONFIG_KEYS:
        bw = base["metrics"].get(key)
        cw = cur["metrics"].get(key)
        if bw is not None and cw is not None and bw != cw:
            sys.exit(f"bench_compare: {key} mismatch: baseline ran "
                     f"{bw:g}, current ran {cw:g} — rerun with a matching "
                     f"configuration")

    regressions = []
    print(f"== {base['bench']}: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:g}%) ==")
    for name, old in base["metrics"].items():
        if name not in cur["metrics"]:
            if direction(name):
                regressions.append(f"{name}: tracked metric disappeared")
            continue
        new = cur["metrics"][name]
        sign = direction(name)
        if old == 0:
            change = 0.0 if new == 0 else float("inf")
        else:
            change = 100.0 * (new - old) / abs(old)
        if sign == 2:  # security canary: absolute growth gate
            regressed = (new - old) > args.adv_tolerance
            detail = f"{new - old:+.3f} abs"
        else:
            regressed = bool(sign) and sign * change < -args.threshold
            detail = f"{change:+.2f}%"
        flag = "REGRESSION" if regressed else (
            "untracked" if not sign else "ok")
        print(f"  {name:44s} {old:14.3f} -> {new:14.3f}  "
              f"{change:+8.2f}%  {flag}")
        if regressed:
            regressions.append(f"{name}: {detail}")

    for name in cur["metrics"]:
        if name not in base["metrics"]:
            print(f"  {name:44s} (new metric, not in baseline)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:g}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
