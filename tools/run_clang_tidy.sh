#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the project's
# own translation units, using the compilation database a CMake configure
# exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in this tree).
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
#   build-dir   directory containing compile_commands.json (default: build)
#
# Scope is deliberately src/ + bench/ + examples/ .cpp files only: tests
# pull in gtest headers whose style we do not police, and the negative
# compile fixtures are wrong on purpose. Exits non-zero on any finding
# (WarningsAsErrors: '*' in .clang-tidy).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$TIDY' not found (set CLANG_TIDY=...)" >&2
    exit 2
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
         "configure first: cmake -B $BUILD_DIR -S ." >&2
    exit 2
fi

# Project TUs only (see scope note above). Sorted for a stable job order.
mapfile -t FILES < <(find src bench examples -name '*.cpp' | sort)

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "run_clang_tidy: ${#FILES[@]} files, ${JOBS} jobs, db=$BUILD_DIR"

# xargs fans the file list out across cores; clang-tidy is single-threaded
# per invocation. --quiet suppresses the "N warnings generated" chatter
# from system headers so real findings stand out.
printf '%s\n' "${FILES[@]}" |
    xargs -P "$JOBS" -n 4 \
        "$TIDY" --quiet -p "$BUILD_DIR" "$@"

echo "run_clang_tidy: clean"
