#!/usr/bin/env python3
"""Unit tests for tools/lint/check_invariants.py.

Each test builds a throwaway fixture tree containing exactly one violation
(or its allow-marked twin) and asserts the expected rule fires (or stays
quiet). Runs from ctest next to tools/test_bench_compare.py:

    python3 -m unittest tools.lint.test_check_invariants
"""

import os
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_invariants  # noqa: E402

BENCH_COMPARE_STUB = textwrap.dedent("""\
    CONFIG_KEYS = (
        "workload_mb",
        "queue_depth",
        "cache_blocks",
    )
""")


class FixtureTree:
    """Minimal repo skeleton the linter's directory walk expects."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        os.makedirs(os.path.join(self.root, "src"))
        os.makedirs(os.path.join(self.root, "tools"))
        self.write("tools/bench_compare.py", BENCH_COMPARE_STUB)

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def cleanup(self):
        self._tmp.cleanup()


class LintTestCase(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def rules_fired(self):
        return [(f.rule, f.path) for f in check_invariants.run(self.tree.root)]

    def assert_rule(self, rule):
        fired = [r for r, _ in self.rules_fired()]
        self.assertIn(rule, fired)

    def assert_clean(self):
        self.assertEqual(self.rules_fired(), [])


class WallClockRule(LintTestCase):
    def test_steady_clock_flagged(self):
        self.tree.write("src/a.cpp",
                        "auto t = std::chrono::steady_clock::now();\n")
        self.assert_rule("wall-clock")

    def test_time_nullptr_flagged(self):
        self.tree.write("src/a.cpp", "auto t = time(nullptr);\n")
        self.assert_rule("wall-clock")

    def test_allow_marker_suppresses(self):
        self.tree.write(
            "src/a.cpp",
            "auto t = std::chrono::steady_clock::now();"
            "  // lint:allow wall-clock progress log only, not timed path\n")
        self.assert_clean()

    def test_marker_without_reason_does_not_suppress(self):
        self.tree.write(
            "src/a.cpp",
            "auto t = std::chrono::steady_clock::now();"
            "  // lint:allow wall-clock\n")
        self.assert_rule("wall-clock")

    def test_mention_in_comment_ignored(self):
        self.tree.write("src/a.cpp",
                        "// never use std::chrono::steady_clock here\n")
        self.assert_clean()

    def test_mention_in_string_ignored(self):
        self.tree.write("src/a.cpp",
                        'log("std::chrono::steady_clock is banned");\n')
        self.assert_clean()


class RawRandRule(LintTestCase):
    def test_std_rand_flagged(self):
        self.tree.write("src/a.cpp", "int x = std::rand();\n")
        self.assert_rule("raw-rand")

    def test_random_device_flagged(self):
        self.tree.write("src/a.cpp", "std::random_device rd;\n")
        self.assert_rule("raw-rand")

    def test_mt19937_flagged(self):
        self.tree.write("src/a.cpp", "std::mt19937_64 gen(42);\n")
        self.assert_rule("raw-rand")

    def test_util_rng_ok(self):
        self.tree.write("src/a.cpp", "util::Rng rng(seed);\n")
        self.assert_clean()

    def test_identifier_containing_rand_ok(self):
        self.tree.write("src/a.cpp", "auto v = rerandomise(slot);\n")
        self.assert_clean()


class SyncTypesRule(LintTestCase):
    def test_std_mutex_flagged(self):
        self.tree.write("src/a.hpp", "std::mutex m_;\n")
        self.assert_rule("sync-types")

    def test_lock_guard_flagged(self):
        self.tree.write("src/a.cpp", "std::lock_guard<std::mutex> l(m_);\n")
        self.assert_rule("sync-types")

    def test_condition_variable_flagged(self):
        self.tree.write("src/a.hpp", "std::condition_variable cv_;\n")
        self.assert_rule("sync-types")

    def test_sync_hpp_itself_exempt(self):
        self.tree.write("src/util/sync.hpp",
                        "class Mutex { std::mutex m_; };\n")
        self.assert_clean()

    def test_annotated_types_ok(self):
        self.tree.write("src/a.hpp",
                        "util::Mutex mu_;\nutil::CondVar cv_;\n")
        self.assert_clean()


class UnorderedIterRule(LintTestCase):
    def test_range_for_over_member_flagged(self):
        self.tree.write("src/a.hpp", textwrap.dedent("""\
            std::unordered_map<uint64_t, Bytes> stash_;
            void drain() {
              for (const auto& [k, v] : stash_) emit(k, v);
            }
        """))
        self.assert_rule("unordered-iter")

    def test_begin_pop_flagged(self):
        self.tree.write("src/a.hpp", textwrap.dedent("""\
            std::unordered_map<uint64_t, Bytes> stash_;
            void pop() { auto it = stash_.begin(); }
        """))
        self.assert_rule("unordered-iter")

    def test_point_lookup_ok(self):
        self.tree.write("src/a.hpp", textwrap.dedent("""\
            std::unordered_map<uint64_t, Bytes> cache_;
            bool has(uint64_t k) { return cache_.find(k) != cache_.end(); }
        """))
        self.assert_clean()

    def test_ordered_map_iteration_ok(self):
        self.tree.write("src/a.hpp", textwrap.dedent("""\
            std::map<uint64_t, Bytes> stash_;
            void drain() {
              for (const auto& [k, v] : stash_) emit(k, v);
            }
        """))
        self.assert_clean()

    def test_allow_marker_suppresses(self):
        self.tree.write("src/a.hpp", textwrap.dedent("""\
            std::unordered_set<uint64_t> seen_;
            // the sum is order-independent
            uint64_t total() {
              uint64_t t = 0;
              for (auto v : seen_) t += v;  // lint:allow unordered-iter commutative fold
              return t;
            }
        """))
        self.assert_clean()


class AdapterRules(LintTestCase):
    GOOD_ADAPTER = textwrap.dedent("""\
        #include "api/scheme_registry.hpp"
        namespace {
        class FooScheme final : public api::PdeScheme {
          void init() { dev_ = api::stack_device_for(cfg_, backing_); }
        };
        const api::SchemeRegistrar kRegistrar{"foo", make_foo};
        }  // namespace
    """)

    def test_good_adapter_clean(self):
        self.tree.write("src/api/adapters/foo_scheme.cpp", self.GOOD_ADAPTER)
        self.assert_clean()

    def test_direct_block_io_flagged(self):
        self.tree.write("src/api/adapters/foo_scheme.cpp", textwrap.dedent("""\
            const api::SchemeRegistrar kRegistrar{"foo", make_foo};
            void f() {
              auto dev = api::stack_device_for(cfg_, backing_);
              backing_->read_blocks(0, 8, out);
            }
        """))
        self.assert_rule("adapter-route")

    def test_missing_stacking_flagged(self):
        self.tree.write("src/api/adapters/foo_scheme.cpp", textwrap.dedent("""\
            const api::SchemeRegistrar kRegistrar{"foo", make_foo};
            void f() { use(backing_); }
        """))
        self.assert_rule("adapter-route")

    def test_footer_translator_base_counts_as_routing(self):
        self.tree.write("src/api/adapters/foo_scheme.cpp", textwrap.dedent("""\
            class FooScheme final : public FooterTranslatorScheme {};
            const api::SchemeRegistrar kRegistrar{"foo", make_foo};
        """))
        self.assert_clean()

    def test_missing_registrar_flagged(self):
        self.tree.write("src/api/adapters/foo_scheme.cpp", textwrap.dedent("""\
            void f() { auto dev = api::stack_device_for(cfg_, backing_); }
        """))
        self.assert_rule("adapter-reg")

    def test_tu_with_header_is_infrastructure_not_adapter(self):
        self.tree.write("src/api/adapters/base.hpp", "class Base {};\n")
        self.tree.write("src/api/adapters/base.cpp", textwrap.dedent("""\
            void Base::f() { backing_->read_blocks(0, 8, out); }
        """))
        self.assert_clean()


class ShardEncapRule(LintTestCase):
    def test_direct_bitmap_member_flagged(self):
        self.tree.write("src/thin/thin_pool.cpp",
                        "bool t = (bitmap_[c / 64] >> (c % 64)) & 1;\n")
        self.assert_rule("shard-encap")

    def test_free_count_mutation_flagged(self):
        self.tree.write("src/thin/thin_pool.cpp", "--free_chunks_;\n")
        self.assert_rule("shard-encap")

    def test_txn_ledger_member_flagged(self):
        self.tree.write("src/thin/thin_pool.hpp",
                        "return txn_allocated_;\n")
        self.assert_rule("shard-encap")

    def test_owner_header_exempt(self):
        self.tree.write("src/thin/alloc_shard.hpp",
                        "std::vector<uint64_t> bitmap_ GUARDED_BY(mu_);\n")
        self.assert_clean()

    def test_public_accessor_name_ok(self):
        self.tree.write("src/thin/thin_pool.hpp",
                        "return alloc_.txn_allocated_count();\n")
        self.assert_clean()

    def test_longer_identifier_ok(self):
        self.tree.write("src/thin/thin_pool.cpp",
                        "for (uint64_t b = 0; b < geom_.bitmap_blocks; ++b)\n")
        self.assert_clean()

    def test_outside_thin_tree_ignored(self):
        self.tree.write("src/fs/ext_fs.cpp", "auto& w = bitmap_[i];\n")
        self.assert_clean()

    def test_allow_marker_suppresses(self):
        self.tree.write(
            "src/thin/recovery.cpp",
            "dump(bitmap_);"
            "  // lint:allow shard-encap read-only dump, pool quiesced\n")
        self.assert_clean()


class KnobRegistryRule(LintTestCase):
    def test_getenv_in_bench_flagged(self):
        self.tree.write(
            "bench/bench_foo.cpp",
            'if (const char* v = std::getenv("MOBICEAL_FOO")) use(v);\n')
        self.assert_rule("knob-registry")

    def test_getenv_in_src_flagged(self):
        self.tree.write("src/cache/cache_target.cpp",
                        'const char* v = getenv("MOBICEAL_CACHE_BLOCKS");\n')
        self.assert_rule("knob-registry")

    def test_bench_knob_helper_flagged(self):
        self.tree.write(
            "bench/harness.hpp",
            "o.queue_depth = bench_knob_u64(argc, argv, \"--qd\", 1);\n")
        self.assert_rule("knob-registry")

    def test_registry_itself_exempt(self):
        self.tree.write("src/api/stack_config.cpp",
                        "if (const char* e = std::getenv(k.env)) parse(e);\n")
        self.assert_clean()

    def test_bench_run_controls_in_harness_exempt(self):
        self.tree.write(
            "bench/harness.cpp",
            'if (const char* v = std::getenv("MOBICEAL_BENCH_MB")) mb(v);\n')
        self.assert_clean()

    def test_allow_marker_suppresses(self):
        self.tree.write(
            "tests/env_test.cpp",
            'setup(getenv("HOME"));'
            "  // lint:allow knob-registry test fixture path, not a knob\n")
        self.assert_clean()

    def test_mention_in_comment_ignored(self):
        self.tree.write("src/a.cpp",
                        "// knobs resolve CLI > getenv(env) > default\n")
        self.assert_clean()


STACK_CONFIG_STUB = textwrap.dedent("""\
    constexpr Knob kKnobs[] = {
        {"--queue-depth", "MOBICEAL_QUEUE_DEPTH", Knob::kU32MinOne,
         offsetof(StackConfig, queue_depth)},
        {"--ftl", "MOBICEAL_FTL", Knob::kU32,
         offsetof(StackConfig, ftl_mode)},
    };
""")


def knob_table(flags):
    # Rows carry argument placeholders (`--flag N`), like the real tables.
    rows = "".join(f"| `{f} N` | `MOBICEAL_X` | what it does |\n"
                   for f in flags)
    return ("# Knobs\n\n| Flag | Env | Meaning |\n|---|---|---|\n" + rows)


class KnobDocsRule(LintTestCase):
    """Doc-drift gate: registry knobs <-> README/ARCHITECTURE knob tables."""

    ALL = ("--queue-depth", "--ftl")

    def write_tree(self, readme_flags=ALL, arch_flags=ALL, arch=True):
        self.tree.write("src/api/stack_config.cpp", STACK_CONFIG_STUB)
        self.tree.write("README.md", knob_table(readme_flags))
        if arch:
            self.tree.write("docs/ARCHITECTURE.md", knob_table(arch_flags))

    def test_matching_tables_clean(self):
        self.write_tree()
        self.assert_clean()

    def test_registry_knob_missing_from_readme_flagged(self):
        self.write_tree(readme_flags=("--queue-depth",))
        self.assert_rule("knob-docs")

    def test_registry_knob_missing_from_architecture_flagged(self):
        self.write_tree(arch_flags=("--queue-depth",))
        self.assert_rule("knob-docs")

    def test_stale_documented_knob_flagged(self):
        # The reverse direction: a table row for a flag the registry no
        # longer (or never) had.
        self.write_tree(readme_flags=self.ALL + ("--removed-knob",))
        self.assert_rule("knob-docs")

    def test_missing_architecture_doc_flagged(self):
        self.write_tree(arch=False)
        self.assert_rule("knob-docs")

    def test_prose_mention_is_not_a_table_row(self):
        # Only `| `--flag`` table rows count as documentation; prose naming
        # a flag neither satisfies nor violates the rule.
        self.tree.write("src/api/stack_config.cpp", STACK_CONFIG_STUB)
        self.tree.write("README.md",
                        knob_table(self.ALL) +
                        "\nSee also the `--json` output flag.\n")
        self.tree.write("docs/ARCHITECTURE.md", knob_table(self.ALL))
        self.assert_clean()

    def test_no_registry_in_tree_skips_quietly(self):
        self.tree.write("README.md", "# no knob table\n")
        self.assert_clean()


class BaselineSchemaRule(LintTestCase):
    def good(self):
        return ('{"bench": "io", "metrics": {"workload_mb": 4, '
                '"seq_write_kbps": 100.5, "queue_depth": 8}}')

    def test_good_baseline_clean(self):
        self.tree.write("bench/baselines/BENCH_io.json", self.good())
        self.assert_clean()

    def test_invalid_json_flagged(self):
        self.tree.write("bench/baselines/BENCH_io.json", "{nope")
        self.assert_rule("baseline-schema")

    def test_name_mismatch_flagged(self):
        self.tree.write(
            "bench/baselines/BENCH_io.json",
            '{"bench": "other", "metrics": {"workload_mb": 4}}')
        self.assert_rule("baseline-schema")

    def test_bad_filename_prefix_flagged(self):
        self.tree.write("bench/baselines/io.json", self.good())
        self.assert_rule("baseline-schema")

    def test_throughput_without_workload_flagged(self):
        self.tree.write(
            "bench/baselines/BENCH_io.json",
            '{"bench": "io", "metrics": {"seq_write_kbps": 100.5}}')
        self.assert_rule("baseline-schema")

    def test_latency_only_without_workload_ok(self):
        self.tree.write(
            "bench/baselines/BENCH_timing.json",
            '{"bench": "timing", "metrics": {"boot_s": 1.5}}')
        self.assert_clean()

    def test_non_numeric_metric_flagged(self):
        self.tree.write(
            "bench/baselines/BENCH_io.json",
            '{"bench": "io", "metrics": {"workload_mb": "four"}}')
        self.assert_rule("baseline-schema")

    def test_config_keys_read_from_bench_compare(self):
        keys = check_invariants.read_config_keys(self.tree.root)
        self.assertEqual(keys, ("workload_mb", "queue_depth", "cache_blocks"))


class RealTreeSmoke(unittest.TestCase):
    def test_repo_is_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        # Only meaningful when run from a checkout that has src/.
        if not os.path.isdir(os.path.join(repo, "src")):
            self.skipTest("not running inside the repo")
        findings = check_invariants.run(repo)
        self.assertEqual([str(f) for f in findings], [])

    def test_registry_knobs_parse_from_real_tree(self):
        # Pins KNOB_ENTRY_RE against the actual kKnobs table: if the
        # registry syntax changes and the regex silently stops matching,
        # the knob-docs rule would stop firing — this catches that rot.
        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        if not os.path.isfile(os.path.join(repo, "src", "api",
                                           "stack_config.cpp")):
            self.skipTest("not running inside the repo")
        knobs = dict(check_invariants.read_registry_knobs(repo))
        self.assertGreaterEqual(len(knobs), 15)
        self.assertEqual(knobs.get("--ftl"), "MOBICEAL_FTL")
        self.assertEqual(knobs.get("--queue-depth"), "MOBICEAL_QUEUE_DEPTH")


if __name__ == "__main__":
    unittest.main()
