#!/usr/bin/env python3
"""Project-specific invariant lint for the MobiCeal tree.

The compiler (and clang's -Wthread-safety) prove lock discipline; this pass
enforces the repo rules a compiler cannot see. Every finding carries a rule
id; a line can opt out with an inline marker stating a reason:

    some_call();  // lint:allow <rule-id> <why this is safe here>

Rules (see README "Static analysis" for the policy):

  wall-clock     src/ is a virtual-time simulation: wall-clock sources
                 (std::chrono clocks, time(), gettimeofday, ...) in timed
                 paths make results nondeterministic and silently weaken
                 the _adv deniability canaries.
  raw-rand       rand()/srand()/std::random_device/raw mt19937 bypass the
                 seeded util::Rng / crypto::SecureRandom plumbing, breaking
                 replay determinism.
  unordered-iter Iterating (or popping begin() of) std::unordered_map/set
                 feeds standard-library hash layout into I/O or timing
                 order. Point lookups are fine; ordered traversal must use
                 deterministic containers.
  sync-types     Locking in src/ uses the annotated util::Mutex /
                 util::MutexLock / util::CondVar (util/sync.hpp) so clang's
                 thread-safety analysis sees every lock; raw std::mutex /
                 std::lock_guard / std::condition_variable are invisible
                 to it.
  adapter-route  Scheme adapters (src/api/adapters/*) must stack their
                 backing device via api::stack_device_for — direct
                 read_blocks/write_blocks on a raw backing device bypasses
                 striping/cache/crypt wiring and the knob plumbing.
  adapter-reg    Every scheme adapter translation unit self-registers a
                 SchemeRegistrar, so registry-driven benches and the
                 security game cover it automatically.
  baseline-schema  Committed bench/baselines/*.json must parse, name the
                 bench their filename claims, record workload_mb, and carry
                 numeric values for every knob key bench_compare.py guards
                 (the CONFIG_KEYS list is read out of bench_compare.py so
                 the two can never drift apart).
  knob-docs      Every knob in the api::StackConfig registry must appear in
                 the knob tables of README.md AND docs/ARCHITECTURE.md (a
                 markdown table row carrying the backticked flag), and every
                 flag those tables document must exist in the registry. The
                 registry is parsed out of src/api/stack_config.cpp, so the
                 docs cannot drift from the code in either direction.
  shard-encap    The thin-pool allocator's state (the bitmap words, the
                 per-shard free counts, the txn ledgers) lives inside
                 thin::ShardedBitmap (src/thin/alloc_shard.hpp) and is only
                 coherent under the shard locks. Direct member access from
                 the rest of src/thin/ reintroduces the unlocked bitmap
                 walks the sharding refactor removed.
  knob-registry  Stack tuning knobs are declared exactly once, in the
                 api::StackConfig registry (src/api/stack_config.cpp).
                 Ad-hoc getenv() reads or bench_knob_* helpers anywhere in
                 src/bench/examples/tests fork the knob surface: the flag,
                 the env var and the struct field drift apart. Bench-run
                 controls (JSON output path, workload size/reps) in
                 bench/harness.cpp and the wall-clock crypto worker count
                 in src/crypto/crypto_pool.cpp are exempt — they tune the
                 run, not the simulated stack.

Stdlib-only; runs from ctest and CI:  python3 tools/lint/check_invariants.py
Exit status is the number of findings (0 = clean).
"""

import argparse
import json
import os
import re
import sys

ALLOW_RE = re.compile(r"(?://|#)\s*lint:allow\s+(?P<rule>[\w-]+)\s+\S")

# ---- line-pattern rules ------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    r"std::chrono::(system|steady|high_resolution)_clock",
    r"\bgettimeofday\s*\(",
    r"\bclock_gettime\s*\(",
    r"\bstd::time\s*\(",
    r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)",
    r"\b(localtime|gmtime)(_r)?\s*\(",
]

RAW_RAND_PATTERNS = [
    r"\bstd::rand\s*\(",
    r"(?<![\w:])s?rand\s*\(",
    r"\bstd::random_device\b",
    r"\bstd::mt19937(_64)?\b",
    r"\barc4random",
]

SYNC_TYPE_PATTERNS = [
    r"\bstd::mutex\b",
    r"\bstd::recursive_mutex\b",
    r"\bstd::shared_mutex\b",
    r"\bstd::lock_guard\b",
    r"\bstd::scoped_lock\b",
    r"\bstd::condition_variable(_any)?\b",
]
# util/sync.hpp wraps the std primitives by design; thread_annotations.hpp
# documents them.
SYNC_TYPE_EXEMPT_FILES = {
    os.path.join("util", "sync.hpp"),
    os.path.join("util", "thread_annotations.hpp"),
}

ADAPTER_IO_PATTERNS = [r"(->|\.)\s*(read_blocks|write_blocks)\s*\("]

# Allocator-internal member names: the trailing lookahead keeps public
# accessors (txn_allocated_count) and unrelated fields (geom_.bitmap_blocks)
# out of scope — only the bare member token fires.
SHARD_ENCAP_PATTERNS = [
    r"\b(bitmap_|free_chunks_|txn_allocated_|txn_freed_)"
    r"(?![A-Za-z0-9_])",
]
SHARD_ENCAP_TREE = os.path.join("src", "thin")
SHARD_ENCAP_OWNER = os.path.join("src", "thin", "alloc_shard.hpp")

KNOB_REGISTRY_PATTERNS = [r"\bgetenv\s*\(", r"\bbench_knob\w*\s*\("]
# The registry itself, plus the two legitimate non-stack getenv sites (see
# the knob-registry rule text above).
KNOB_REGISTRY_EXEMPT_FILES = {
    os.path.join("src", "api", "stack_config.cpp"),
    os.path.join("src", "crypto", "crypto_pool.cpp"),
    os.path.join("bench", "harness.cpp"),
}
KNOB_REGISTRY_TREES = ("src", "bench", "examples", "tests")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(?P<name>\w+)\s*[;({=]")
UNORDERED_TYPE_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Best-effort removal of // comments and string/char literals so the
    pattern rules don't fire on prose or log text."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)  # keep an empty literal as a token
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed(rule, raw_line):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group("rule") == rule


def iter_source_files(root, subdir, exts=(".cpp", ".hpp", ".h", ".cc")):
    base = os.path.join(root, subdir)
    for dirpath, _, files in sorted(os.walk(base)):
        for f in sorted(files):
            if f.endswith(exts):
                yield os.path.join(dirpath, f)


def rel(root, path):
    return os.path.relpath(path, root)


# ---- src/ rules --------------------------------------------------------------

def check_src_file(root, path, findings):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    relpath = rel(root, path)
    rel_to_src = os.path.relpath(path, os.path.join(root, "src"))
    unordered_names = set()

    for lineno, raw in enumerate(raw_lines, 1):
        code = strip_comments_and_strings(raw)
        for pat in WALL_CLOCK_PATTERNS:
            if re.search(pat, code) and not allowed("wall-clock", raw):
                findings.append(Finding(
                    relpath, lineno, "wall-clock",
                    "wall-clock time source in virtual-time code: "
                    "timed paths must draw time from util::SimClock"))
        for pat in RAW_RAND_PATTERNS:
            if re.search(pat, code) and not allowed("raw-rand", raw):
                findings.append(Finding(
                    relpath, lineno, "raw-rand",
                    "unseeded/global randomness: use util::Rng or "
                    "crypto::SecureRandom (replay determinism)"))
        for pat in SYNC_TYPE_PATTERNS:
            if (re.search(pat, code)
                    and rel_to_src not in SYNC_TYPE_EXEMPT_FILES
                    and not allowed("sync-types", raw)):
                findings.append(Finding(
                    relpath, lineno, "sync-types",
                    "raw std synchronisation primitive: use the annotated "
                    "util::Mutex/MutexLock/CondVar so -Wthread-safety "
                    "sees the lock"))

        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group("name"))

    # Second pass: ordered traversal of unordered containers declared in
    # this file (range-for, .begin(), ->begin()).
    for lineno, raw in enumerate(raw_lines, 1):
        code = strip_comments_and_strings(raw)
        for name in unordered_names:
            range_for = re.search(
                r"for\s*\([^;)]*:\s*\*?" + re.escape(name) + r"\s*\)", code)
            begin = re.search(
                re.escape(name) + r"\s*(\.|->)\s*(c?begin|c?rbegin)\s*\(",
                code)
            if (range_for or begin) and not allowed("unordered-iter", raw):
                findings.append(Finding(
                    relpath, lineno, "unordered-iter",
                    f"ordered traversal of unordered container '{name}': "
                    "iteration order is stdlib hash layout — use a "
                    "deterministic container or an explicit sort"))


# ---- adapter rules -----------------------------------------------------------

def check_adapters(root, findings):
    adapters_dir = os.path.join(root, "src", "api", "adapters")
    if not os.path.isdir(adapters_dir):
        return
    for path in iter_source_files(root, os.path.join("src", "api",
                                                     "adapters"),
                                  exts=(".cpp",)):
        # Translation units with a sibling header are shared infrastructure
        # (e.g. the FooterTranslatorScheme base), not scheme adapters.
        if os.path.exists(path[:-len(".cpp")] + ".hpp"):
            continue
        relpath = rel(root, path)
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        text = "\n".join(strip_comments_and_strings(l) for l in raw_lines)

        for lineno, raw in enumerate(raw_lines, 1):
            code = strip_comments_and_strings(raw)
            for pat in ADAPTER_IO_PATTERNS:
                if re.search(pat, code) and not allowed("adapter-route", raw):
                    findings.append(Finding(
                        relpath, lineno, "adapter-route",
                        "direct block I/O in a scheme adapter: devices "
                        "must be stacked via api::stack_device_for so "
                        "striping/cache/crypt knobs apply"))

        if ("stack_device_for" not in text
                and "FooterTranslatorScheme" not in text):
            findings.append(Finding(
                relpath, 0, "adapter-route",
                "adapter never routes its backing device through "
                "api::stack_device_for (directly or via "
                "FooterTranslatorScheme)"))
        if "SchemeRegistrar" not in text:
            findings.append(Finding(
                relpath, 0, "adapter-reg",
                "adapter does not self-register a SchemeRegistrar: "
                "registry-driven benches and the security game will "
                "silently skip it"))


# ---- allocator encapsulation -------------------------------------------------

def check_shard_encapsulation(root, findings):
    tree = os.path.join(root, SHARD_ENCAP_TREE)
    if not os.path.isdir(tree):
        return
    for path in iter_source_files(root, SHARD_ENCAP_TREE):
        relpath = rel(root, path)
        if relpath == SHARD_ENCAP_OWNER:
            continue
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        for lineno, raw in enumerate(raw_lines, 1):
            code = strip_comments_and_strings(raw)
            for pat in SHARD_ENCAP_PATTERNS:
                if re.search(pat, code) and not allowed("shard-encap", raw):
                    findings.append(Finding(
                        relpath, lineno, "shard-encap",
                        "direct access to allocator-internal state: the "
                        "bitmap/free-count/txn-ledger members are only "
                        "coherent under their shard lock — go through "
                        "thin::ShardedBitmap's API (alloc_shard.hpp)"))


# ---- knob registry -----------------------------------------------------------

def check_knob_registry(root, findings):
    for tree in KNOB_REGISTRY_TREES:
        for path in iter_source_files(root, tree):
            relpath = rel(root, path)
            if relpath in KNOB_REGISTRY_EXEMPT_FILES:
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            for lineno, raw in enumerate(raw_lines, 1):
                code = strip_comments_and_strings(raw)
                for pat in KNOB_REGISTRY_PATTERNS:
                    if re.search(pat, code) and not allowed("knob-registry",
                                                           raw):
                        findings.append(Finding(
                            relpath, lineno, "knob-registry",
                            "ad-hoc knob plumbing: stack knobs are declared "
                            "once in the api::StackConfig registry "
                            "(src/api/stack_config.cpp) — use "
                            "StackConfig::apply_knobs / is_knob_flag"))


# ---- knob documentation ------------------------------------------------------

KNOB_DOC_FILES = ("README.md", os.path.join("docs", "ARCHITECTURE.md"))
# One kKnobs entry: {"--flag", "MOBICEAL_ENV", ...}
KNOB_ENTRY_RE = re.compile(r'\{\s*"(--[\w-]+)"\s*,\s*"(MOBICEAL_\w+)"')
# A documented knob: a markdown table row starting with the backticked flag,
# optionally followed by an argument placeholder (`--queue-depth N`,
# `--cache-writeback 0\|1`).
DOC_KNOB_ROW_RE = re.compile(r"^\s*\|\s*`(--[\w-]+)(?:[ =][^`]*)?`")


def read_registry_knobs(root):
    """(flag, env) pairs straight out of the kKnobs table in
    src/api/stack_config.cpp — the single source of truth for knobs."""
    path = os.path.join(root, "src", "api", "stack_config.cpp")
    if not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as f:
        return KNOB_ENTRY_RE.findall(f.read())


def check_knob_docs(root, findings):
    # No parseable registry: nothing to drift (fixture trees). The unit
    # tests pin the regex against the real tree, so silent rot is caught.
    registry = read_registry_knobs(root)
    if not registry:
        return
    registry_flags = {flag for flag, _ in registry}
    for doc in KNOB_DOC_FILES:
        path = os.path.join(root, doc)
        if not os.path.isfile(path):
            findings.append(Finding(
                doc, 0, "knob-docs",
                "knob-table document missing: the StackConfig registry is "
                "documented in README.md and docs/ARCHITECTURE.md"))
            continue
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        documented = {}
        for lineno, line in enumerate(lines, 1):
            m = DOC_KNOB_ROW_RE.match(line)
            if m:
                documented.setdefault(m.group(1), lineno)
        for flag, env in registry:
            if flag not in documented:
                findings.append(Finding(
                    doc, 0, "knob-docs",
                    f"knob {flag} ({env}) is in the StackConfig registry "
                    "but missing from this file's knob table"))
        for flag, lineno in sorted(documented.items()):
            if flag not in registry_flags:
                findings.append(Finding(
                    doc, lineno, "knob-docs",
                    f"knob table documents {flag}, which is not in the "
                    "StackConfig registry (removed or misspelled)"))


# ---- bench baseline schema ---------------------------------------------------

def read_config_keys(root):
    """CONFIG_KEYS straight out of tools/bench_compare.py — one source of
    truth for the knob schema."""
    path = os.path.join(root, "tools", "bench_compare.py")
    with open(path, encoding="utf-8") as f:
        src = f.read()
    m = re.search(r"CONFIG_KEYS\s*=\s*\(([^)]*)\)", src)
    if not m:
        raise RuntimeError("CONFIG_KEYS tuple not found in bench_compare.py")
    keys = [a or b for a, b in
            re.findall(r"\"([^\"]+)\"|'([^']+)'", m.group(1))]
    if not keys:
        raise RuntimeError("CONFIG_KEYS tuple in bench_compare.py is empty")
    return tuple(keys)


METRIC_SUFFIXES = ("_kbps", "_mbps", "_s", "_ns", "_adv")


def check_baselines(root, findings):
    baselines_dir = os.path.join(root, "bench", "baselines")
    if not os.path.isdir(baselines_dir):
        return
    config_keys = read_config_keys(root)
    for fname in sorted(os.listdir(baselines_dir)):
        if not fname.endswith(".json"):
            continue
        relpath = rel(root, os.path.join(baselines_dir, fname))
        try:
            with open(os.path.join(baselines_dir, fname),
                      encoding="utf-8") as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            findings.append(Finding(relpath, 0, "baseline-schema",
                                    f"invalid JSON: {e}"))
            continue
        if not fname.startswith("BENCH_"):
            findings.append(Finding(
                relpath, 0, "baseline-schema",
                "baseline files are named BENCH_<name>.json"))
            continue
        expected_bench = fname[len("BENCH_"):-len(".json")]
        if doc.get("bench") != expected_bench:
            findings.append(Finding(
                relpath, 0, "baseline-schema",
                f"bench field {doc.get('bench')!r} does not match filename "
                f"(expected {expected_bench!r}) — directory-mode pairing "
                "in bench_compare.py keys on the name"))
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            findings.append(Finding(relpath, 0, "baseline-schema",
                                    "missing metrics object"))
            continue
        # Throughput is a rate: comparing it without pinning the workload
        # size is meaningless, so any _kbps/_mbps baseline must record
        # workload_mb. Latency tables and _adv canaries have no workload.
        has_throughput = any(k.endswith(("_kbps", "_mbps")) for k in metrics)
        if has_throughput and "workload_mb" not in metrics:
            findings.append(Finding(
                relpath, 0, "baseline-schema",
                "throughput baseline records no workload_mb: "
                "bench_compare.py cannot guard against cross-workload "
                "comparisons"))
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                findings.append(Finding(
                    relpath, 0, "baseline-schema",
                    f"metric {key!r} is not numeric"))
        for key in config_keys:
            if key in metrics and not isinstance(metrics[key], (int, float)):
                findings.append(Finding(
                    relpath, 0, "baseline-schema",
                    f"knob {key!r} must be numeric"))


# ---- driver ------------------------------------------------------------------

def run(root):
    findings = []
    for path in iter_source_files(root, "src"):
        check_src_file(root, path, findings)
    check_adapters(root, findings)
    check_shard_encapsulation(root, findings)
    check_knob_registry(root, findings)
    check_knob_docs(root, findings)
    check_baselines(root, findings)
    return findings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this file)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    findings = run(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_invariants: {len(findings)} finding(s)")
        return min(len(findings), 125)
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
