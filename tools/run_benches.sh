#!/usr/bin/env bash
# Run every built bench_* binary, optionally writing BENCH_<name>.json.
#
# Usage: run_benches.sh BUILD_DIR [JSON_DIR] [FILTER_REGEX]
#   BUILD_DIR     cmake build directory containing the bench binaries
#   JSON_DIR      output directory for BENCH_*.json ("" = no JSON)
#   FILTER_REGEX  only run benches whose basename matches (default: all)
#
# Adding a bench is ONE CMakeLists edit: anything built as bench_* is
# picked up automatically, so the CI workflow never hard-codes a run list.
# Workload sizing comes from the usual env knobs (MOBICEAL_BENCH_MB,
# MOBICEAL_BENCH_REPS, MOBICEAL_QUEUE_DEPTH, MOBICEAL_STRIPES, ...).
#
# bench_micro is skipped: it measures real wall-clock primitive costs via
# google-benchmark (no --json protocol, machine-dependent output) and is
# only built where that library exists.
#
# Exit status is nonzero if any bench fails its built-in gates (benches
# exit nonzero on state divergence / lost speedups) or nothing matched.
set -euo pipefail

build_dir=${1:?usage: run_benches.sh BUILD_DIR [JSON_DIR] [FILTER_REGEX]}
json_dir=${2:-}
filter=${3:-.}

if [ -n "$json_dir" ]; then
  mkdir -p "$json_dir"
fi

status=0
ran=0
failed=""
for bench in "$build_dir"/bench_*; do
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  name=$(basename "$bench")
  case "$name" in
    bench_micro) continue ;;
    *.*) continue ;;  # stray artifacts (bench_foo.json etc.)
  esac
  echo "$name" | grep -Eq -- "$filter" || continue
  ran=$((ran + 1))
  echo "== $name =="
  if [ -n "$json_dir" ]; then
    "$bench" --json "$json_dir/BENCH_${name#bench_}.json" || {
      status=1
      failed="$failed $name"
    }
  else
    "$bench" || {
      status=1
      failed="$failed $name"
    }
  fi
  echo
done

if [ "$ran" -eq 0 ]; then
  echo "run_benches: no bench matched '$filter' in $build_dir" >&2
  exit 1
fi
if [ "$status" -ne 0 ]; then
  echo "run_benches: FAILED:$failed" >&2
fi
echo "run_benches: ran $ran bench(es)"
exit $status
